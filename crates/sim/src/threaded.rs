//! A threaded runtime: the same middleware stack driven by real OS threads
//! and crossbeam channels instead of the discrete-event scheduler.
//!
//! Nothing here is deterministic — that is the point. The paper's
//! guarantees (safety, the `n`/`n+1` retention bounds) are properties of
//! the algorithm, not of a particular schedule; this runtime lets the test
//! suite exercise them under genuine concurrency and message reordering.
//!
//! Crash/recovery is not modelled here (a stop-the-world recovery manager
//! needs the very synchrony this runtime omits); use the discrete-event
//! simulator for failure experiments.

use crossbeam::channel::{unbounded, Receiver, Sender};

use rdt_base::{Payload, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind, ReceiveReport};
use rdt_workloads::AppOp;

/// What travels between process threads.
enum Envelope {
    /// An application message's piggyback (payloads are opaque anyway).
    App(Piggyback),
    /// End-of-stream marker, one per peer, sent at shutdown.
    Farewell,
}

/// Commands from the driver to a process thread.
enum Command {
    Checkpoint,
    Send(ProcessId),
    Stop,
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// The middleware instances after the run, in process-id order.
    pub processes: Vec<Middleware>,
}

impl ThreadedReport {
    /// Highest retained-checkpoint peak across processes.
    pub fn max_peak_retained(&self) -> usize {
        self.processes
            .iter()
            .map(|mw| mw.store().peak())
            .max()
            .unwrap_or(0)
    }
}

/// Runs an [`AppOp`] stream over `n` process threads connected by
/// crossbeam channels. Each op is dispatched to its process's thread;
/// message delivery order is whatever the scheduler produces.
///
/// [`AppOp::Crash`] ops are ignored (see module docs).
///
/// # Panics
///
/// Panics if a process thread panics (middleware invariant violation).
pub fn run_threaded(n: usize, ops: &[AppOp], protocol: ProtocolKind, gc: GcKind) -> ThreadedReport {
    assert!(n > 0, "a system needs at least one process");
    let (msg_txs, msg_rxs): (Vec<Sender<Envelope>>, Vec<Receiver<Envelope>>) =
        (0..n).map(|_| unbounded()).unzip();
    let (cmd_txs, cmd_rxs): (Vec<Sender<Command>>, Vec<Receiver<Command>>) =
        (0..n).map(|_| unbounded()).unzip();

    let handles: Vec<std::thread::JoinHandle<Middleware>> = (0..n)
        .map(|i| {
            let me = ProcessId::new(i);
            let mut mw = Middleware::new(me, n, protocol, gc);
            let msg_rx = msg_rxs[i].clone();
            let cmd_rx = cmd_rxs[i].clone();
            let peers: Vec<Sender<Envelope>> = msg_txs.clone();
            std::thread::spawn(move || {
                let mut farewells = 0usize;
                let mut stopped = false;
                // One reusable report per process thread: receives allocate
                // nothing at steady state.
                let mut report = ReceiveReport::default();
                loop {
                    if stopped && farewells == n - 1 {
                        return mw;
                    }
                    crossbeam::channel::select! {
                        recv(msg_rx) -> env => match env.expect("peers outlive messages") {
                            Envelope::App(pb) => {
                                mw.receive_piggyback_into(&pb, &mut report)
                                    .expect("process is alive");
                            }
                            Envelope::Farewell => farewells += 1,
                        },
                        recv(cmd_rx) -> cmd => match cmd.expect("driver outlives commands") {
                            Command::Checkpoint => {
                                mw.basic_checkpoint().expect("process is alive");
                            }
                            Command::Send(to) => {
                                let pb = mw.piggyback();
                                let _ = mw.send(to, Payload::empty());
                                peers[to.index()]
                                    .send(Envelope::App(pb))
                                    .expect("peer inbox open");
                            }
                            Command::Stop => {
                                for (k, peer) in peers.iter().enumerate() {
                                    if k != me.index() {
                                        peer.send(Envelope::Farewell).expect("peer inbox open");
                                    }
                                }
                                stopped = true;
                            }
                        },
                    }
                }
            })
        })
        .collect();

    for op in ops {
        match *op {
            AppOp::Checkpoint(p) => cmd_txs[p.index()]
                .send(Command::Checkpoint)
                .expect("thread alive"),
            AppOp::Send { from, to } => cmd_txs[from.index()]
                .send(Command::Send(to))
                .expect("thread alive"),
            AppOp::Crash(_) => {} // not modelled here
        }
    }
    for tx in &cmd_txs {
        tx.send(Command::Stop).expect("thread alive");
    }

    let processes = handles
        .into_iter()
        .map(|h| h.join().expect("process thread panicked"))
        .collect();
    ThreadedReport { processes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_workloads::{Pattern, WorkloadSpec};

    #[test]
    fn threaded_run_respects_retention_bounds() {
        let n = 4;
        let ops = WorkloadSpec::uniform_random(n, 400)
            .with_seed(11)
            .generate();
        let report = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert_eq!(report.processes.len(), n);
        for mw in &report.processes {
            assert!(mw.store().len() <= n, "{}", mw.owner());
            assert!(mw.store().peak() <= n + 1, "{}", mw.owner());
        }
    }

    #[test]
    fn threaded_run_processes_all_commands() {
        let n = 3;
        let ops = WorkloadSpec::uniform_random(n, 150)
            .with_pattern(Pattern::Ring)
            .with_seed(2)
            .generate();
        let sends = ops
            .iter()
            .filter(|op| matches!(op, AppOp::Send { .. }))
            .count() as u64;
        let report = run_threaded(n, &ops, ProtocolKind::Cbr, GcKind::RdtLgc);
        let sent: u64 = report
            .processes
            .iter()
            .map(|mw| {
                // Every send advanced the per-sender sequence; recover the
                // count from forced+basic is not possible, so check stores
                // indirectly: all messages were delivered (unbounded
                // reliable channels), so every process heard from its ring
                // predecessor.
                u64::from(mw.store().total_stored() > 0)
            })
            .sum();
        assert_eq!(sent, n as u64);
        let _ = sends;
    }

    #[test]
    fn crash_ops_are_ignored() {
        let n = 2;
        let ops = vec![
            AppOp::Crash(ProcessId::new(0)),
            AppOp::Checkpoint(ProcessId::new(0)),
        ];
        let report = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert!(!report.processes[0].is_crashed());
    }

    #[test]
    fn single_process_system_terminates() {
        let ops = vec![AppOp::Checkpoint(ProcessId::new(0))];
        let report = run_threaded(1, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert_eq!(report.processes[0].store().len(), 1);
    }
}
