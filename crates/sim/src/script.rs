//! Deterministic execution of [`Script`]s through real middleware stacks.

use rdt_base::{Payload, ProcessId, Result, TraceEvent};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};
use rdt_workloads::{Script, ScriptOp};

/// Outcome of running a script.
#[derive(Debug)]
pub struct ScriptRun {
    /// The middleware instances after the run, in process-id order.
    pub processes: Vec<Middleware>,
    /// The event trace (checkpoints including forced ones, sends,
    /// deliveries), replayable into an offline CCP.
    pub trace: Vec<TraceEvent>,
    /// Every checkpoint eliminated during the run, as
    /// `(process, checkpoint index)` pairs in elimination order.
    pub eliminated: Vec<(ProcessId, usize)>,
}

impl ScriptRun {
    /// Retained checkpoint indices of process `p`, ascending.
    pub fn retained(&self, p: ProcessId) -> Vec<usize> {
        self.processes[p.index()]
            .store()
            .indices()
            .map(|i| i.value())
            .collect()
    }

    /// Peak simultaneous retention of process `p`.
    pub fn peak(&self, p: ProcessId) -> usize {
        self.processes[p.index()].store().peak()
    }
}

/// Runs `script` over `n` fresh processes with the given protocol and
/// collector. Deliveries happen exactly where the script places them.
///
/// # Errors
///
/// Propagates middleware errors (scripts over live processes do not
/// produce any).
///
/// # Panics
///
/// Panics if the script delivers a send ordinal twice.
///
/// ```
/// use rdt_base::ProcessId;
/// use rdt_core::GcKind;
/// use rdt_protocols::ProtocolKind;
/// use rdt_sim::run_script;
/// use rdt_workloads::figures::figure5_worst_case;
///
/// let n = 4;
/// let run = run_script(n, &figure5_worst_case(n), ProtocolKind::Fdas, GcKind::RdtLgc)
///     .expect("script runs");
/// // The paper's tight bound: every process retains exactly n checkpoints.
/// for i in 0..n {
///     assert_eq!(run.retained(ProcessId::new(i)).len(), n);
/// }
/// ```
pub fn run_script(
    n: usize,
    script: &Script,
    protocol: ProtocolKind,
    gc: GcKind,
) -> Result<ScriptRun> {
    let mut processes: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, protocol, gc))
        .collect();
    let mut trace = Vec::new();
    let mut eliminated = Vec::new();
    // Per send ordinal: (id, destination, piggyback), consumed on delivery.
    let mut sends: Vec<Option<(rdt_base::MessageId, ProcessId, Piggyback)>> = Vec::new();

    for op in script.ops() {
        match *op {
            ScriptOp::Checkpoint(p) => {
                let report = processes[p.index()].basic_checkpoint()?;
                trace.push(TraceEvent::Checkpoint {
                    process: p,
                    forced: false,
                });
                eliminated.extend(report.eliminated.iter().map(|i| (p, i.value())));
            }
            ScriptOp::Send { from, to } => {
                let pb = processes[from.index()].piggyback();
                let msg = processes[from.index()].send(to, Payload::empty());
                trace.push(TraceEvent::Send {
                    id: msg.meta.id,
                    to,
                });
                sends.push(Some((msg.meta.id, to, pb)));
            }
            ScriptOp::Deliver { send_ordinal } => {
                let (id, to, pb) = sends[send_ordinal]
                    .take()
                    .expect("script delivers each send at most once");
                let report = processes[to.index()].receive_piggyback(&pb)?;
                if report.forced.is_some() {
                    trace.push(TraceEvent::Checkpoint {
                        process: to,
                        forced: true,
                    });
                }
                trace.push(TraceEvent::Deliver { id });
                eliminated.extend(report.eliminated.iter().map(|i| (to, i.value())));
            }
        }
    }

    // Undelivered sends are in-transit: mark them dropped so offline replay
    // excludes them from the dependency relation explicitly.
    for slot in sends.into_iter().flatten() {
        trace.push(TraceEvent::Drop { id: slot.0 });
    }

    Ok(ScriptRun {
        processes,
        trace,
        eliminated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_workloads::figures::{figure4_expectations, figure4_script, figure5_worst_case};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn figure4_run_matches_expectations() {
        let run = run_script(3, &figure4_script(), ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        let expect = figure4_expectations();
        let eliminated: Vec<(usize, usize)> = run
            .eliminated
            .iter()
            .map(|(proc_, idx)| (proc_.index(), *idx))
            .collect();
        assert_eq!(eliminated, expect.eliminated);
        for (i, retained) in expect.retained.iter().enumerate() {
            assert_eq!(&run.retained(p(i)), retained, "process {}", i + 1);
        }
        // FDAS forces nothing on this script.
        assert!(run.processes.iter().all(|mw| mw.forced_count() == 0));
    }

    #[test]
    fn figure5_reaches_the_tight_bound() {
        for n in 2..6 {
            let run = run_script(
                n,
                &figure5_worst_case(n),
                ProtocolKind::Fdas,
                GcKind::RdtLgc,
            )
            .unwrap();
            for i in 0..n {
                assert_eq!(run.retained(p(i)).len(), n, "n = {n}");
            }
            // One more checkpoint per process: transient n+1, then back to n
            // (the paper's "n collected, n² remain stored").
            let mut processes = run.processes;
            for mw in processes.iter_mut() {
                mw.basic_checkpoint().unwrap();
                assert_eq!(mw.store().peak(), n + 1, "n = {n}");
                assert_eq!(mw.store().len(), n, "n = {n}");
            }
        }
    }

    #[test]
    fn trace_replays_into_an_rdt_ccp() {
        let run = run_script(3, &figure4_script(), ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        let ccp = rdt_ccp::CcpBuilder::from_trace(3, &run.trace)
            .expect("crash-free trace")
            .build();
        assert!(ccp.is_rdt());
    }

    #[test]
    fn undelivered_sends_are_dropped_in_trace() {
        let mut script = Script::new();
        script.send(p(0), p(1));
        let run = run_script(2, &script, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        assert!(matches!(run.trace.last(), Some(TraceEvent::Drop { .. })));
    }
}
