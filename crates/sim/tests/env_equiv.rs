//! Environment-equivalence properties: moving the engine onto the
//! `rdt-env` runtime abstraction (`SimEnv`: virtual clock, bucket queue
//! and deterministic rng behind the `Clock`/`Transport`/`Rng` traits)
//! must be invisible to every observable of a simulation.
//!
//! Two properties pin this:
//!
//! 1. For the committed golden scenarios, a fresh `SimEnv` run is
//!    **byte-identical** (full canonical dump: trace, metrics, occupancy,
//!    recovery sessions) to the fingerprint recorded from the pre-refactor
//!    engine — randomly sampled here so shrinking lands on the smallest
//!    diverging scenario, and pinned exhaustively by `replay_golden`.
//! 2. For *arbitrary* fixed-seed configurations, two runs through the
//!    trait boundary are byte-identical — the abstraction introduces no
//!    hidden nondeterminism (wall-clock, iteration order, shared state).

use proptest::prelude::*;

use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_workloads::Pattern;

mod common;
use common::{canonical_dump, fingerprint, golden_fingerprints, run, scenarios, Scenario};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A `SimEnv` run of any golden scenario reproduces the committed
    /// pre-refactor fingerprint byte-for-byte.
    #[test]
    fn sim_env_run_is_byte_identical_to_the_pre_refactor_golden(idx in 0usize..5) {
        let scenario = &scenarios()[idx];
        let golden = golden_fingerprints();
        let (name, want) = &golden[idx];
        prop_assert_eq!(name.as_str(), scenario.name, "scenario order drifted");
        let got = fingerprint(&canonical_dump(&run(scenario)));
        prop_assert_eq!(
            &got,
            want,
            "{}: SimEnv run diverged from the pre-refactor engine",
            name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary fixed-seed configurations replay byte-identically through
    /// the environment traits.
    #[test]
    fn arbitrary_fixed_seed_runs_replay_byte_identically(
        n in 2usize..7,
        steps in 50usize..400,
        seed in 0u64..u64::MAX,
        proto in 0usize..4,
        gc in 0usize..4,
        pattern in 0usize..3,
        crash in 0.0f64..0.03,
        loss in 0.0f64..0.15,
    ) {
        let scenario = Scenario {
            name: "arbitrary",
            n,
            steps,
            seed,
            protocol: [
                ProtocolKind::Fdas,
                ProtocolKind::Cas,
                ProtocolKind::Fdi,
                ProtocolKind::Mrs,
            ][proto],
            gc: [
                GcKind::RdtLgc,
                GcKind::None,
                GcKind::WangGlobal,
                GcKind::TimeBased { horizon: 100 },
            ][gc],
            pattern: [Pattern::UniformRandom, Pattern::Ring, Pattern::TokenRing][pattern],
            crash,
            correlated: 0.2,
            loss,
            control_every: None,
            mode: RecoveryMode::Coordinated,
        };
        let a = canonical_dump(&run(&scenario));
        let b = canonical_dump(&run(&scenario));
        prop_assert_eq!(a, b, "a fixed seed must replay byte-identically");
    }
}
