//! Shared between `replay_golden` and `env_equiv`: the pinned scenario
//! list, the canonical report dump, and its fingerprint.

#![allow(dead_code)] // each test binary uses a subset

use std::fmt::Write as _;

use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::{ChannelConfig, SimConfig, SimulationBuilder, SimulationReport};
use rdt_workloads::{Pattern, WorkloadSpec};

pub const GOLDEN_PATH: &str = "tests/replay_golden.txt";

pub struct Scenario {
    pub name: &'static str,
    pub n: usize,
    pub steps: usize,
    pub seed: u64,
    pub protocol: ProtocolKind,
    pub gc: GcKind,
    pub pattern: Pattern,
    pub crash: f64,
    pub correlated: f64,
    pub loss: f64,
    pub control_every: Option<u64>,
    pub mode: RecoveryMode,
}

pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "uniform_fdas_lgc",
            n: 6,
            steps: 1200,
            seed: 42,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            pattern: Pattern::UniformRandom,
            crash: 0.0,
            correlated: 0.0,
            loss: 0.0,
            control_every: None,
            mode: RecoveryMode::Coordinated,
        },
        Scenario {
            name: "crashy_fdas_lgc",
            n: 5,
            steps: 900,
            seed: 7,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            pattern: Pattern::UniformRandom,
            crash: 0.01,
            correlated: 0.25,
            loss: 0.05,
            control_every: None,
            mode: RecoveryMode::Coordinated,
        },
        Scenario {
            name: "crashy_uncoordinated",
            n: 4,
            steps: 800,
            seed: 1234,
            protocol: ProtocolKind::Cas,
            gc: GcKind::RdtLgc,
            pattern: Pattern::Ring,
            crash: 0.02,
            correlated: 0.3,
            loss: 0.0,
            control_every: None,
            mode: RecoveryMode::Uncoordinated,
        },
        Scenario {
            name: "coordinated_wang_control",
            n: 4,
            steps: 700,
            seed: 99,
            protocol: ProtocolKind::Fdi,
            gc: GcKind::WangGlobal,
            pattern: Pattern::TokenRing,
            crash: 0.0,
            correlated: 0.0,
            loss: 0.1,
            control_every: Some(120),
            mode: RecoveryMode::Coordinated,
        },
        Scenario {
            name: "timebased_bursty",
            n: 8,
            steps: 1000,
            seed: 5,
            protocol: ProtocolKind::Mrs,
            gc: GcKind::TimeBased { horizon: 200 },
            pattern: Pattern::Bursty { burst: 6 },
            crash: 0.005,
            correlated: 0.2,
            loss: 0.02,
            control_every: None,
            mode: RecoveryMode::Coordinated,
        },
    ]
}

pub fn run(s: &Scenario) -> SimulationReport {
    run_with_shards(s, 1)
}

/// The same scenario on the sharded parallel engine — used by the
/// equivalence suite, which asserts the output is byte-identical to the
/// sequential run at every shard count.
pub fn run_with_shards(s: &Scenario, shards: usize) -> SimulationReport {
    let spec = WorkloadSpec::uniform_random(s.n, s.steps)
        .with_pattern(s.pattern)
        .with_seed(s.seed)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(s.crash);
    SimulationBuilder::new(spec)
        .protocol(s.protocol)
        .garbage_collector(s.gc)
        .config(SimConfig {
            channel: ChannelConfig::lossy(s.loss),
            control_every: s.control_every,
            correlated_crash_prob: s.correlated,
            record_trace: true,
            record_occupancy: true,
            state_size: 512,
            ..SimConfig::default()
        })
        .recovery_mode(s.mode)
        .shards(shards)
        .run()
        .expect("simulation runs")
}

/// The same scenario with phase profiling switched on. The profile lives
/// outside the canonical dump, so the report must stay byte-identical to
/// the unprofiled run — `obs_equiv` asserts exactly that against the
/// committed goldens.
pub fn run_profiled_with_shards(s: &Scenario, shards: usize) -> SimulationReport {
    let spec = WorkloadSpec::uniform_random(s.n, s.steps)
        .with_pattern(s.pattern)
        .with_seed(s.seed)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(s.crash);
    SimulationBuilder::new(spec)
        .protocol(s.protocol)
        .garbage_collector(s.gc)
        .config(SimConfig {
            channel: ChannelConfig::lossy(s.loss),
            control_every: s.control_every,
            correlated_crash_prob: s.correlated,
            record_trace: true,
            record_occupancy: true,
            state_size: 512,
            ..SimConfig::default()
        })
        .recovery_mode(s.mode)
        .shards(shards)
        .profile()
        .run()
        .expect("simulation runs")
}

/// Canonical textual dump of every semantic field of a report, independent
/// of the in-memory representation of vectors, sets and queues.
pub fn canonical_dump(report: &SimulationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n={}", report.n);
    for (i, dv) in report.final_dvs.iter().enumerate() {
        let _ = writeln!(out, "dv[{i}]={:?}", dv.to_raw());
    }
    let _ = writeln!(out, "last_stable={:?}", report.final_last_stable);
    let _ = writeln!(out, "retained={:?}", report.final_retained);
    let _ = writeln!(
        out,
        "incarnations={:?}",
        report
            .final_incarnations
            .iter()
            .map(|v| v.value())
            .collect::<Vec<_>>()
    );
    let m = &report.metrics;
    let _ = writeln!(
        out,
        "ticks={} sessions={} rolled_back={} control_rounds={} peak_global={} degraded={}",
        m.ticks,
        m.recovery_sessions,
        m.total_rolled_back,
        m.control_rounds,
        m.peak_global_retained,
        m.degraded_lines
    );
    for (i, pm) in m.per_process.iter().enumerate() {
        let _ = writeln!(
            out,
            "p{i}: retained={} peak={} stored={} collected={} basic={} forced={} sent={} delivered={} lost={} rsum={} samples={}",
            pm.retained,
            pm.peak_retained,
            pm.total_stored,
            pm.total_collected,
            pm.basic,
            pm.forced,
            pm.sent,
            pm.delivered,
            pm.lost,
            pm.retained_sum,
            pm.samples
        );
    }
    let trace = report.trace.as_ref().expect("trace recorded");
    let _ = writeln!(out, "trace_len={}", trace.len());
    for event in trace {
        let _ = writeln!(out, "  {event}");
    }
    let occupancy = report.occupancy.as_ref().expect("occupancy recorded");
    let _ = writeln!(out, "occupancy_len={}", occupancy.len());
    for (at, p, retained) in occupancy {
        let _ = writeln!(out, "  {at} {p} {retained}");
    }
    for session in &report.recovery_sessions {
        let _ = writeln!(
            out,
            "session: faulty={:?} line={:?} rolled_back={:?} eliminated={:?} degraded={:?} incarnations={:?} li={}",
            session.faulty,
            session.line,
            session.rolled_back,
            session.eliminated,
            session.degraded,
            session
                .incarnations
                .iter()
                .map(|v| v.value())
                .collect::<Vec<_>>(),
            session
                .li
                .as_ref()
                .map(|li| li.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    out
}

pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `name -> fingerprint` lines exactly as the golden file stores them.
pub fn fingerprint(dump: &str) -> String {
    format!("{:016x} len={}", fnv1a(dump.as_bytes()), dump.len())
}

pub fn fingerprints() -> Vec<(String, String)> {
    scenarios()
        .iter()
        .map(|s| (s.name.to_string(), fingerprint(&canonical_dump(&run(s)))))
        .collect()
}

/// Parses the committed golden file into `(name, fingerprint)` pairs.
pub fn golden_fingerprints() -> Vec<(String, String)> {
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing - run once with REPLAY_BLESS=1 to record it");
    golden
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (name, fp) = l.split_once(' ').expect("name fingerprint");
            (name.to_string(), fp.to_string())
        })
        .collect()
}
