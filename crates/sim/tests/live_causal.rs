//! Causal span events and flight recording from the live frame path.
//!
//! Own integration binary (own process): the sink, level and flight
//! recorder are process-global, so this must not share a process with
//! other tests that touch them.

use std::sync::Arc;

use rdt_base::ProcessId;
use rdt_core::GcKind;
use rdt_obs::{CaptureSink, Level};
use rdt_protocols::ProtocolKind;
use rdt_sim::LiveNode;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn live_frames_emit_causal_events_and_flight_dump() {
    let dir = std::env::temp_dir().join(format!("rdt_live_causal_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight_p0.jsonl");

    let capture = Arc::new(CaptureSink::new());
    rdt_obs::set_sink(capture.clone());
    // Sink at info: the debug-level frame events must still reach the
    // flight recorder (which bypasses the filter) but not the sink.
    rdt_obs::set_level(Some(Level::Info));
    rdt_obs::flight::install(&dump, 0);

    let mut a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut b = LiveNode::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
    b.checkpoint().unwrap();
    let (f0, _) = b.send_frame(p(0));
    let out = a.deliver_frame(&f0.encode()).unwrap().unwrap();
    assert_eq!(out.sender, p(1));
    let (f1, _) = a.send_frame(p(1));
    assert_eq!(f1.parent, Some((1, 0)));
    b.deliver_frame(&f1.encode()).unwrap().unwrap();

    rdt_obs::flight::flush();
    let body = std::fs::read_to_string(&dump).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    // 2 sends, 2 recvs, 2 applies, and the second apply's fresher DV lets
    // RDT-LGC collect b's checkpoint — one typed gc_collect event.
    assert_eq!(lines.len(), 7, "unexpected dump: {body}");
    for line in &lines {
        rdt_obs::check::check_jsonl_line(line).unwrap();
    }
    let events: Vec<_> = lines
        .iter()
        .map(|l| rdt_obs::json::parse(l).unwrap())
        .collect();
    let kinds: Vec<_> = events
        .iter()
        .map(|e| e.get("event").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(
        kinds,
        [
            "frame_send",
            "frame_recv",
            "frame_apply",
            "frame_send",
            "frame_recv",
            "frame_apply",
            "gc_collect"
        ]
    );
    // The GC event names the collected checkpoint and the surviving pins.
    assert_eq!(events[6].get("eliminated").unwrap().as_u64(), Some(1));
    assert_eq!(events[6].get("collected").unwrap().as_str(), Some("1"));
    assert!(events[6].get("pins").unwrap().as_str().is_some());
    // The second send (a's) names b's frame 0 as its causal parent.
    assert_eq!(events[3].get("parent_process").unwrap().as_u64(), Some(1));
    assert_eq!(events[3].get("parent_seq").unwrap().as_u64(), Some(0));
    // The apply learned at least the interval the send carried.
    let sent = events[0].get("interval").unwrap().as_u64().unwrap();
    let learned = events[2].get("interval").unwrap().as_u64().unwrap();
    assert!(learned >= sent, "apply learned {learned} < sent {sent}");

    // The debug-level frame events were filtered from the sink...
    let sunk = capture.drain();
    assert!(
        sunk.iter().all(|e| e.level >= Level::Info),
        "debug event leaked through an info-level sink"
    );

    // ...and with the recorder uninstalled the frame path goes quiet.
    rdt_obs::flight::uninstall().unwrap();
    rdt_obs::set_level(Some(Level::Error));
    let (f2, _) = b.send_frame(p(0));
    a.deliver_frame(&f2.encode()).unwrap().unwrap();
    assert!(capture.drain().is_empty());

    std::fs::remove_dir_all(&dir).unwrap();
}
