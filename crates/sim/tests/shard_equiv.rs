//! Sharded-engine equivalence: for a fixed seed, the conservative
//! lookahead parallel engine must produce **byte-identical** output to
//! the sequential engine — full canonical dump, including the event
//! trace, occupancy timeline, per-process metrics, the order-sensitive
//! `peak_global_retained`, and every recovery-session report — at any
//! shard count and under either partitioning.
//!
//! A zero-lookahead channel (`min_delay == 0`) cannot run sharded; the
//! engine must fall back to the sequential path *loudly* (typed warning,
//! counted in metrics) while still producing the identical report.

use proptest::prelude::*;

use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::{
    ChannelConfig, Partitioning, ShardConfig, SimConfig, SimulationBuilder, ZeroLookaheadFallback,
};
use rdt_workloads::{Pattern, WorkloadSpec};

mod common;
use common::{canonical_dump, run, run_with_shards, scenarios, Scenario};

/// Every golden scenario, sharded at 1, 2 and 4, dumps byte-identically
/// to the sequential engine. This is the replay-golden equivalence the
/// CI multi-thread smoke job runs under `RAYON_NUM_THREADS=2`.
#[test]
fn golden_scenarios_are_byte_identical_at_every_shard_count() {
    for scenario in &scenarios() {
        let sequential = canonical_dump(&run(scenario));
        for shards in [1usize, 2, 4] {
            let sharded = canonical_dump(&run_with_shards(scenario, shards));
            assert_eq!(
                sharded, sequential,
                "{}: {} shards diverged from sequential",
                scenario.name, shards
            );
        }
    }
}

/// The strided partitioning maximizes cross-shard traffic (every
/// neighbour link crosses); it must be just as equivalent.
#[test]
fn strided_partitioning_is_byte_identical() {
    let scenario = &scenarios()[1]; // crashy_fdas_lgc: crashes + loss
    let sequential = canonical_dump(&run(scenario));
    let spec = WorkloadSpec::uniform_random(scenario.n, scenario.steps)
        .with_pattern(scenario.pattern)
        .with_seed(scenario.seed)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(scenario.crash);
    let report = SimulationBuilder::new(spec)
        .protocol(scenario.protocol)
        .garbage_collector(scenario.gc)
        .config(SimConfig {
            channel: ChannelConfig::lossy(scenario.loss),
            control_every: scenario.control_every,
            correlated_crash_prob: scenario.correlated,
            record_trace: true,
            record_occupancy: true,
            state_size: 512,
            shard: ShardConfig {
                shards: 3,
                partitioning: Partitioning::Strided,
            },
            ..SimConfig::default()
        })
        .recovery_mode(scenario.mode)
        .run()
        .expect("simulation runs");
    assert_eq!(canonical_dump(&report), sequential);
}

/// `min_delay == 0` leaves no conservative lookahead: the run must fall
/// back to the sequential engine, warn via the typed
/// [`ZeroLookaheadFallback`], count the fallback in metrics — and still
/// produce the byte-identical report.
#[test]
fn zero_lookahead_falls_back_loudly_to_the_sequential_engine() {
    let spec = WorkloadSpec::uniform_random(4, 300).with_seed(77);
    let config = SimConfig {
        channel: ChannelConfig::instant(),
        record_trace: true,
        record_occupancy: true,
        ..SimConfig::default()
    };
    let sequential = SimulationBuilder::new(spec.clone())
        .config(config)
        .run()
        .expect("sequential runs");
    let fallen_back = SimulationBuilder::new(spec)
        .config(config)
        .shards(2)
        .run()
        .expect("fallback runs");
    assert_eq!(sequential.metrics.sequential_fallbacks, 0);
    assert_eq!(fallen_back.metrics.sequential_fallbacks, 1);
    assert_eq!(
        canonical_dump(&fallen_back),
        canonical_dump(&sequential),
        "the fallback must not change any observable"
    );
    let warning = ZeroLookaheadFallback { shards: 2 }.to_string();
    assert!(warning.contains("min_delay"), "{warning}");
    assert!(warning.contains("2 shards"), "{warning}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary seeds, topologies, collectors, crash/loss mixes, shard
    /// counts and partitionings: sharded ≡ sequential, byte for byte.
    /// `min_delay` ranges down to 0 so the fallback path is exercised
    /// within the same property.
    #[test]
    fn arbitrary_configs_shard_byte_identically(
        n in 2usize..7,
        steps in 50usize..300,
        seed in 0u64..u64::MAX,
        proto in 0usize..4,
        gc in 0usize..4,
        pattern in 0usize..3,
        crash in 0.0f64..0.03,
        loss in 0.0f64..0.15,
        min_delay in 0u64..3,
        shards in 1usize..=4,
        strided in 0usize..2,
        control in 0usize..2,
        uncoordinated in 0usize..2,
    ) {
        let scenario = Scenario {
            name: "arbitrary",
            n,
            steps,
            seed,
            protocol: [
                ProtocolKind::Fdas,
                ProtocolKind::Cas,
                ProtocolKind::Fdi,
                ProtocolKind::Mrs,
            ][proto],
            gc: [
                GcKind::RdtLgc,
                GcKind::None,
                GcKind::WangGlobal,
                GcKind::TimeBased { horizon: 100 },
            ][gc],
            pattern: [Pattern::UniformRandom, Pattern::Ring, Pattern::TokenRing][pattern],
            crash,
            correlated: 0.2,
            loss,
            control_every: (control == 1).then_some(90),
            mode: if uncoordinated == 1 {
                RecoveryMode::Uncoordinated
            } else {
                RecoveryMode::Coordinated
            },
        };
        let spec = WorkloadSpec::uniform_random(scenario.n, scenario.steps)
            .with_pattern(scenario.pattern)
            .with_seed(scenario.seed)
            .with_checkpoint_prob(0.25)
            .with_crash_prob(scenario.crash);
        let build = |shards: usize| {
            SimulationBuilder::new(spec.clone())
                .protocol(scenario.protocol)
                .garbage_collector(scenario.gc)
                .config(SimConfig {
                    channel: ChannelConfig {
                        min_delay,
                        max_delay: 20,
                        loss_rate: scenario.loss,
                    },
                    control_every: scenario.control_every,
                    correlated_crash_prob: scenario.correlated,
                    record_trace: true,
                    record_occupancy: true,
                    state_size: 512,
                    shard: ShardConfig {
                        shards,
                        partitioning: if strided == 1 {
                            Partitioning::Strided
                        } else {
                            Partitioning::Contiguous
                        },
                    },
                    ..SimConfig::default()
                })
                .recovery_mode(scenario.mode)
                .run()
                .expect("simulation runs")
        };
        let sequential = canonical_dump(&build(1));
        let sharded = canonical_dump(&build(shards));
        prop_assert_eq!(sharded, sequential, "sharded run diverged from sequential");
    }
}
