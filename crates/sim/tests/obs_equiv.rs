//! Observability must be a pure observer: with phase profiling switched
//! on, every golden scenario — sequential and sharded — must still produce
//! the **byte-identical** canonical dump recorded in the committed golden
//! file, and the structured warning path must carry the same typed payload
//! the old `eprintln!` lost.
//!
//! Also pins the sharded profile's accounting: per shard, the worker
//! phases (`setup`/`cmd_wait`/`drain`/`exchange`/`barrier_wait`/`global`/
//! `finish`) tile the worker loop, so their totals must sum to the
//! shard's measured wall-clock within ±5%.

use proptest::prelude::*;

use rdt_core::GcKind;
use rdt_obs::{CaptureSink, Level, Value};
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::{ChannelConfig, Partitioning, ShardConfig, SimConfig, SimulationBuilder};
use rdt_workloads::{Pattern, WorkloadSpec};

mod common;
use common::{
    canonical_dump, fingerprint, golden_fingerprints, run_profiled_with_shards, scenarios, Scenario,
};

/// Profiling on, goldens unchanged: every pinned scenario at shards 1, 2
/// and 4 must fingerprint exactly as the committed golden file says —
/// not merely match an unprofiled run of the same binary.
#[test]
fn goldens_are_byte_identical_with_profiling_on() {
    let golden: std::collections::BTreeMap<String, String> =
        golden_fingerprints().into_iter().collect();
    for scenario in &scenarios() {
        let expected = golden
            .get(scenario.name)
            .unwrap_or_else(|| panic!("{} missing from golden file", scenario.name));
        for shards in [1usize, 2, 4] {
            let report = run_profiled_with_shards(scenario, shards);
            assert!(
                report.profile.is_some(),
                "{}: profiling requested but no profile recorded",
                scenario.name
            );
            let fp = fingerprint(&canonical_dump(&report));
            assert_eq!(
                &fp, expected,
                "{} at {} shards: profiling changed the canonical output",
                scenario.name, shards
            );
        }
    }
}

/// The sequential engine's profile carries the engine phases with sane
/// totals, and the run envelope covers its parts.
#[test]
fn sequential_profile_reports_engine_phases() {
    let report = run_profiled_with_shards(&scenarios()[0], 1);
    let profile = report.profile.expect("profile recorded");
    let run = profile.phases.get("engine/run").expect("engine/run phase");
    assert_eq!(run.count, 1);
    let drain = profile
        .phases
        .get("engine/drain")
        .expect("engine/drain phase");
    assert!(drain.count > 0 && drain.total_ns > 0);
    assert!(
        drain.total_ns <= run.total_ns,
        "drain ({} ns) cannot exceed the run envelope ({} ns)",
        drain.total_ns,
        run.total_ns
    );
    assert!(drain.min_ns <= drain.max_ns);
    assert_eq!(drain.buckets.iter().sum::<u64>(), drain.count);
}

/// Sharded profile accounting: for every shard `k`, the worker phase
/// totals must sum to `shard/wall/k` within ±5% — the phases tile the
/// worker loop, so anything beyond timer overhead is a hole in the
/// instrumentation. Timing-sensitive, so best-of-three against scheduler
/// preemption landing between two scoped timers.
#[test]
fn shard_phase_totals_sum_to_the_shard_wall_clock() {
    const PARTS: [&str; 7] = [
        "setup",
        "cmd_wait",
        "drain",
        "exchange",
        "barrier_wait",
        "global",
        "finish",
    ];
    let scenario = &scenarios()[0]; // largest crash-free pinned scenario
    let shards = 4usize;
    let mut last_err = String::new();
    for _attempt in 0..3 {
        let report = run_profiled_with_shards(scenario, shards);
        let profile = report.profile.as_ref().expect("profile recorded");
        let mut ok = true;
        last_err.clear();
        for k in 0..shards {
            let wall = profile
                .phases
                .get(&format!("shard/wall/{k}"))
                .unwrap_or_else(|| panic!("shard/wall/{k} missing"))
                .total_ns;
            let sum: u64 = PARTS
                .iter()
                .filter_map(|p| profile.phases.get(&format!("shard/{p}/{k}")))
                .map(|s| s.total_ns)
                .sum();
            // ±5%: sum ≥ 95% of wall (no unaccounted holes) and ≤ 105%
            // (scoped timers cannot overlap the envelope by more than
            // measurement noise).
            if sum * 20 < wall * 19 || sum * 20 > wall * 21 {
                ok = false;
                last_err = format!(
                    "shard {k}: phase totals {sum} ns vs wall {wall} ns ({:.1}%)",
                    100.0 * sum as f64 / wall as f64
                );
                break;
            }
        }
        if ok {
            return;
        }
    }
    panic!("phase sums outside ±5% of wall-clock on 3 attempts: {last_err}");
}

/// The zero-lookahead fallback warning reaches the structured sink as a
/// typed event — name, level, target and the fields the old `eprintln!`
/// buried in prose.
#[test]
fn zero_lookahead_fallback_emits_a_structured_warning() {
    let capture = std::sync::Arc::new(CaptureSink::new());
    let prev = rdt_obs::set_sink(capture.clone());
    rdt_obs::set_level(Some(Level::Warn));
    let spec = WorkloadSpec::uniform_random(4, 200).with_seed(9);
    let report = SimulationBuilder::new(spec)
        .config(SimConfig {
            channel: ChannelConfig::instant(), // min_delay == 0: no lookahead
            ..SimConfig::default()
        })
        .shards(2)
        .run()
        .expect("fallback run succeeds");
    let events = capture.events();
    rdt_obs::set_sink(prev);

    assert_eq!(report.metrics.sequential_fallbacks, 1);
    let ev = events
        .iter()
        .find(|e| e.name == "zero_lookahead_fallback")
        .expect("structured fallback warning captured");
    assert_eq!(ev.level, Level::Warn);
    assert_eq!(ev.target, "rdt_sim::engine");
    assert!(ev.message.contains("min_delay"), "{}", ev.message);
    let field = |key: &str| {
        ev.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("field '{key}' missing from {ev:?}"))
    };
    assert_eq!(field("shards"), Value::U64(2));
    assert_eq!(field("min_delay"), Value::U64(0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shard-equivalence property re-run with profiling enabled on
    /// the sharded side: a *profiled* sharded run must stay byte-identical
    /// to the *unprofiled* sequential run — profiling must not perturb
    /// event order, RNG draws, or any observable.
    #[test]
    fn profiled_sharded_runs_stay_byte_identical(
        n in 2usize..7,
        steps in 50usize..300,
        seed in 0u64..u64::MAX,
        proto in 0usize..4,
        gc in 0usize..3,
        pattern in 0usize..3,
        crash in 0.0f64..0.03,
        loss in 0.0f64..0.15,
        min_delay in 1u64..3,
        shards in 2usize..=4,
        strided in 0usize..2,
    ) {
        let scenario = Scenario {
            name: "arbitrary_profiled",
            n,
            steps,
            seed,
            protocol: [
                ProtocolKind::Fdas,
                ProtocolKind::Cas,
                ProtocolKind::Fdi,
                ProtocolKind::Mrs,
            ][proto],
            gc: [GcKind::RdtLgc, GcKind::None, GcKind::WangGlobal][gc],
            pattern: [Pattern::UniformRandom, Pattern::Ring, Pattern::TokenRing][pattern],
            crash,
            correlated: 0.2,
            loss,
            control_every: None,
            mode: RecoveryMode::Coordinated,
        };
        let spec = WorkloadSpec::uniform_random(scenario.n, scenario.steps)
            .with_pattern(scenario.pattern)
            .with_seed(scenario.seed)
            .with_checkpoint_prob(0.25)
            .with_crash_prob(scenario.crash);
        let build = |shards: usize, profiled: bool| {
            let mut builder = SimulationBuilder::new(spec.clone())
                .protocol(scenario.protocol)
                .garbage_collector(scenario.gc)
                .config(SimConfig {
                    channel: ChannelConfig {
                        min_delay,
                        max_delay: 20,
                        loss_rate: scenario.loss,
                    },
                    correlated_crash_prob: scenario.correlated,
                    record_trace: true,
                    record_occupancy: true,
                    state_size: 512,
                    shard: ShardConfig {
                        shards,
                        partitioning: if strided == 1 {
                            Partitioning::Strided
                        } else {
                            Partitioning::Contiguous
                        },
                    },
                    ..SimConfig::default()
                })
                .recovery_mode(scenario.mode);
            if profiled {
                builder = builder.profile();
            }
            builder.run().expect("simulation runs")
        };
        let sequential = build(1, false);
        let sharded = build(shards, true);
        prop_assert!(sequential.profile.is_none());
        prop_assert!(sharded.profile.is_some());
        prop_assert_eq!(
            canonical_dump(&sharded),
            canonical_dump(&sequential),
            "profiled sharded run diverged from unprofiled sequential"
        );
    }
}
