//! Deterministic-replay goldens: the simulator must produce **identical**
//! `SimulationReport`s for fixed seeds across refactors of its internals.
//!
//! The golden fingerprints in `tests/replay_golden.txt` pin the
//! incarnation-numbered engine, including **correlated multi-fault
//! sessions** (`correlated_crash_prob > 0`): repeated crash/rollback
//! sessions with multi-process faulty sets exercise exactly the orphaned
//! causal knowledge that used to break Lemma-1 totality before incarnation
//! numbers landed. Any engine refactor — including the move onto the
//! `rdt-env` runtime abstraction — must reproduce every fingerprint
//! byte-for-byte under the canonical dump in `common`.
//!
//! To re-bless after an *intentional* semantic change:
//! `REPLAY_BLESS=1 cargo test -p rdt-sim --test replay_golden`.

use std::fmt::Write as _;

mod common;
use common::{canonical_dump, fingerprints, golden_fingerprints, run, scenarios, GOLDEN_PATH};

#[test]
fn reports_match_pre_refactor_goldens() {
    let current: Vec<(String, String)> = fingerprints();
    if std::env::var_os("REPLAY_BLESS").is_some() {
        let mut blob = String::from(
            "# Golden SimulationReport fingerprints (fnv1a over the canonical dump).\n\
             # Recorded from the incarnation-numbered engine with correlated\n\
             # multi-fault sessions enabled; re-bless with REPLAY_BLESS=1 only for\n\
             # intentional semantic changes.\n",
        );
        for (name, fp) in &current {
            let _ = writeln!(blob, "{name} {fp}");
        }
        std::fs::write(GOLDEN_PATH, blob).expect("write golden");
        return;
    }
    let expected = golden_fingerprints();
    assert_eq!(
        expected.len(),
        current.len(),
        "scenario list drifted from the golden file"
    );
    for ((name, want), (cur_name, got)) in expected.iter().zip(&current) {
        assert_eq!(name, cur_name, "scenario order drifted");
        assert_eq!(
            want, got,
            "{name}: SimulationReport diverged from the pre-refactor golden"
        );
    }
}

#[test]
fn same_seed_is_bit_stable_within_one_build() {
    let s = &scenarios()[1];
    let a = canonical_dump(&run(s));
    let b = canonical_dump(&run(s));
    assert_eq!(a, b, "two runs of one seed must be identical");
}
