//! Fault-heavy stress: the acceptance bar for incarnation-numbered
//! recovery. A 1000-session repeated-crash run (n = 8, correlated faults
//! on) must never take the oldest-survivor fallback under a safe collector
//! (RDT-LGC, driven by FDAS and CAS), and replay must be byte-stable
//! across runs of the same seed.

use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::{SimConfig, SimulationBuilder, SimulationReport};
use rdt_workloads::WorkloadSpec;

fn stress(protocol: ProtocolKind, gc: GcKind, mode: RecoveryMode, seed: u64) -> SimulationReport {
    let spec = WorkloadSpec::uniform_random(8, 25_000)
        .with_seed(seed)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(0.05); // ≈ 1250 crash ops over the run
    SimulationBuilder::new(spec)
        .protocol(protocol)
        .garbage_collector(gc)
        .config(SimConfig::fault_heavy())
        .recovery_mode(mode)
        .run()
        .expect("Lemma 1 is total: no safe-collector run may exhaust a store")
}

#[test]
fn thousand_session_stress_never_degrades_under_safe_collectors() {
    for (protocol, mode) in [
        (ProtocolKind::Fdas, RecoveryMode::Coordinated),
        (ProtocolKind::Cas, RecoveryMode::Uncoordinated),
    ] {
        let report = stress(protocol, GcKind::RdtLgc, mode, 77);
        assert!(
            report.metrics.recovery_sessions >= 1000,
            "{protocol:?}/{mode}: only {} sessions — not a stress run",
            report.metrics.recovery_sessions
        );
        assert_eq!(
            report.metrics.degraded_lines, 0,
            "{protocol:?}/{mode}: the oldest-survivor fallback fired under RDT-LGC"
        );
        // Repeated rollbacks really happened: incarnations climbed.
        assert!(
            report.final_incarnations.iter().any(|v| v.value() >= 10),
            "incarnations {:?} — correlated faults did not exercise repeats",
            report.final_incarnations
        );
        // The paper's space bound survives the crash storm.
        assert!(report.metrics.max_retained_per_process() <= 9);
    }
}

#[test]
fn correlated_multi_fault_replay_is_byte_stable() {
    let a = stress(
        ProtocolKind::Fdas,
        GcKind::RdtLgc,
        RecoveryMode::Coordinated,
        123,
    );
    let b = stress(
        ProtocolKind::Fdas,
        GcKind::RdtLgc,
        RecoveryMode::Coordinated,
        123,
    );
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two runs of one correlated-fault seed must be identical"
    );
}

#[test]
fn time_based_collector_still_degrades_gracefully_and_is_counted() {
    // A tight horizon under a crash storm is exactly the unsafe regime the
    // paper critiques: the run must complete (no error), with the fallback
    // events surfaced in the metrics rather than hidden.
    let spec = WorkloadSpec::uniform_random(6, 8_000)
        .with_seed(9)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(0.05);
    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(GcKind::TimeBased { horizon: 40 })
        .config(SimConfig::fault_heavy())
        .run()
        .expect("time-based degradation must not abort the run");
    assert!(
        report.metrics.degraded_lines > 0,
        "the tight-horizon storm was expected to force fallbacks"
    );
}

#[test]
fn invalid_configs_error_at_construction_not_mid_run() {
    use rdt_sim::ChannelConfig;
    // A hand-built (or deserialized) loss_rate > 1 used to survive until
    // the first channel draw and panic inside the RNG; the builder now
    // rejects it up front with a typed error.
    let bad = SimConfig {
        channel: ChannelConfig {
            loss_rate: 1.5,
            ..ChannelConfig::reliable()
        },
        ..SimConfig::default()
    };
    let err = SimulationBuilder::new(WorkloadSpec::uniform_random(2, 10))
        .config(bad)
        .run()
        .unwrap_err();
    assert!(matches!(err, rdt_base::Error::InvalidConfig(_)), "{err}");
}
