//! Shared Theorem-1 pin computation over a checkpoint store.

use rdt_base::{DependencyVector, ProcessId};

use crate::store::CheckpointStore;
use crate::traits::LastIntervals;

/// For each stored checkpoint (in ascending index order, parallel to
/// `store.indices()`), the processes `f` that *pin* it under Theorem 1 given
/// the last-interval vector `li`:
///
/// the pinned checkpoint for `f` is the latest stored `γ` with
/// `DV(s^γ)[f] < LI[f]` whose successor — the next stored checkpoint, or the
/// volatile state `dv` — has an entry `≥ LI[f]` (i.e. `s_f^last → c^{γ+1}`).
///
/// All comparisons are lexicographic over incarnation-qualified entries
/// ([`rdt_base::DvEntry`]), so knowledge about a dead incarnation of `f`
/// never counts as knowing `f`'s post-recovery last checkpoint, however
/// high its raw interval index.
///
/// Entries are lexicographically monotone non-decreasing in the checkpoint
/// index (merges only grow them, and a rollback restarts from a surviving
/// prefix with a strictly newer own incarnation), so the search is a binary
/// partition per process: O(n log s) overall, matching the paper's
/// complexity claim for Algorithm 3.
pub(crate) fn theorem1_pins(
    store: &CheckpointStore,
    li: &LastIntervals,
    dv: &DependencyVector,
) -> Vec<Vec<ProcessId>> {
    let indices: Vec<_> = store.indices().collect();
    let mut pins: Vec<Vec<ProcessId>> = vec![Vec::new(); indices.len()];
    for f in ProcessId::all(li.len()) {
        let target = li.lineage(f);
        let split =
            indices.partition_point(|&idx| store.dv(idx).expect("stored").lineage(f) < target);
        if split == 0 {
            continue;
        }
        let candidate = split - 1;
        let successor_entry = if candidate + 1 < indices.len() {
            store.dv(indices[candidate + 1]).expect("stored").lineage(f)
        } else {
            dv.lineage(f)
        };
        if successor_entry >= target {
            pins[candidate].push(f);
        }
    }
    pins
}

#[cfg(test)]
mod tests {
    use rdt_base::{CheckpointIndex, IntervalIndex};

    use super::*;

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    #[test]
    fn self_entry_always_pins_last_stored() {
        let owner = ProcessId::new(0);
        let mut store = CheckpointStore::new(owner);
        store.insert(idx(0), DependencyVector::from_raw(vec![0, 0]));
        store.insert(idx(1), DependencyVector::from_raw(vec![1, 0]));
        let dv = DependencyVector::from_raw(vec![2, 0]);
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(2), IntervalIndex::ZERO]);
        let pins = theorem1_pins(&store, &li, &dv);
        assert_eq!(pins, vec![vec![], vec![owner]]);
    }

    #[test]
    fn peer_pin_lands_on_latest_unaware_checkpoint() {
        let owner = ProcessId::new(0);
        let f = ProcessId::new(1);
        let mut store = CheckpointStore::new(owner);
        // s^0 knows nothing of f; s^1 knows f's interval 2.
        store.insert(idx(0), DependencyVector::from_raw(vec![0, 0]));
        store.insert(idx(1), DependencyVector::from_raw(vec![1, 2]));
        let dv = DependencyVector::from_raw(vec![2, 2]);
        // LI[f] = 2: s_f^last = s_f^1 → s^1 (entry 2 ≥ 2) and ↛ s^0.
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(2), IntervalIndex::new(2)]);
        let pins = theorem1_pins(&store, &li, &dv);
        assert_eq!(pins[0], vec![f]); // s^0 pinned by f
        assert_eq!(pins[1], vec![owner]); // s^1 pinned by self
    }

    #[test]
    fn no_pin_when_last_checkpoint_of_f_is_unknown() {
        let owner = ProcessId::new(0);
        let mut store = CheckpointStore::new(owner);
        store.insert(idx(0), DependencyVector::from_raw(vec![0, 1]));
        let dv = DependencyVector::from_raw(vec![1, 1]);
        // LI[f] = 5: nothing here knows f's final interval; f pins nothing.
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(1), IntervalIndex::new(5)]);
        let pins = theorem1_pins(&store, &li, &dv);
        assert_eq!(pins, vec![vec![owner]]);
    }

    #[test]
    fn empty_store_has_no_pins() {
        let store = CheckpointStore::new(ProcessId::new(0));
        let dv = DependencyVector::new(2);
        let li = LastIntervals::from_dv(&dv);
        assert!(theorem1_pins(&store, &li, &dv).is_empty());
    }
}
