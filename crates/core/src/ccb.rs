//! Checkpoint control blocks (Algorithm 1 of the paper).
//!
//! The paper manipulates heap CCBs through pointers; we use a slab arena
//! with integer handles, which keeps the reference-counting explicit and
//! `unsafe`-free.

use serde::{Deserialize, Serialize};

use rdt_base::CheckpointIndex;

/// Handle to a [`Ccb`] inside a [`CcbArena`] — the paper's `↑CCB` pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CcbRef(usize);

/// A checkpoint control block: an uncollected stable checkpoint's index plus
/// a reference counter of how many `UC` entries deny its elimination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ccb {
    /// The paper's `IND` field.
    pub index: CheckpointIndex,
    /// The paper's `RC` field.
    pub rc: u32,
}

/// Slab of CCBs with explicit reference counting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcbArena {
    slots: Vec<Option<Ccb>>,
    free: Vec<usize>,
}

impl CcbArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a CCB for checkpoint `index` with `RC = 1`
    /// (procedure `newCCB`, minus the `UC` update).
    pub fn alloc(&mut self, index: CheckpointIndex) -> CcbRef {
        let ccb = Ccb { index, rc: 1 };
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(ccb);
                CcbRef(slot)
            }
            None => {
                self.slots.push(Some(ccb));
                CcbRef(self.slots.len() - 1)
            }
        }
    }

    /// Increments the reference counter (procedure `link`, line 2).
    ///
    /// # Panics
    ///
    /// Panics if the handle is dangling.
    pub fn inc(&mut self, r: CcbRef) {
        self.slots[r.0].as_mut().expect("live CCB").rc += 1;
    }

    /// Decrements the reference counter (procedure `release`, lines 2–5);
    /// if it reaches zero the CCB is deleted and the represented checkpoint
    /// index is returned so the caller can eliminate it from stable storage.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dangling.
    pub fn dec(&mut self, r: CcbRef) -> Option<CheckpointIndex> {
        let ccb = self.slots[r.0].as_mut().expect("live CCB");
        ccb.rc -= 1;
        if ccb.rc == 0 {
            let index = ccb.index;
            self.slots[r.0] = None;
            self.free.push(r.0);
            Some(index)
        } else {
            None
        }
    }

    /// The checkpoint index a live CCB represents.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dangling.
    pub fn index_of(&self, r: CcbRef) -> CheckpointIndex {
        self.slots[r.0].as_ref().expect("live CCB").index
    }

    /// The current reference count of a live CCB.
    ///
    /// # Panics
    ///
    /// Panics if the handle is dangling.
    pub fn rc_of(&self, r: CcbRef) -> u32 {
        self.slots[r.0].as_ref().expect("live CCB").rc
    }

    /// Number of live CCBs — the number of retained checkpoints.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Live `(index, rc)` pairs, unordered.
    pub fn iter_live(&self) -> impl Iterator<Item = (CheckpointIndex, u32)> + '_ {
        self.slots.iter().flatten().map(|ccb| (ccb.index, ccb.rc))
    }

    /// Removes every live CCB (used when rebuilding state in a rollback).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    #[test]
    fn alloc_starts_at_rc_one() {
        let mut a = CcbArena::new();
        let r = a.alloc(idx(3));
        assert_eq!(a.rc_of(r), 1);
        assert_eq!(a.index_of(r), idx(3));
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn dec_to_zero_frees_and_reports_index() {
        let mut a = CcbArena::new();
        let r = a.alloc(idx(7));
        assert_eq!(a.dec(r), Some(idx(7)));
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn inc_then_dec_keeps_alive() {
        let mut a = CcbArena::new();
        let r = a.alloc(idx(1));
        a.inc(r);
        assert_eq!(a.dec(r), None);
        assert_eq!(a.rc_of(r), 1);
        assert_eq!(a.dec(r), Some(idx(1)));
    }

    #[test]
    fn slots_are_reused() {
        let mut a = CcbArena::new();
        let r1 = a.alloc(idx(0));
        a.dec(r1);
        let r2 = a.alloc(idx(1));
        assert_eq!(r1, r2, "freed slot is recycled");
        assert_eq!(a.index_of(r2), idx(1));
    }

    #[test]
    #[should_panic(expected = "live CCB")]
    fn dangling_handle_panics() {
        let mut a = CcbArena::new();
        let r = a.alloc(idx(0));
        a.dec(r);
        let _ = a.index_of(r);
    }

    #[test]
    fn iter_live_reports_all() {
        let mut a = CcbArena::new();
        let _r1 = a.alloc(idx(0));
        let r2 = a.alloc(idx(1));
        a.inc(r2);
        let mut live: Vec<_> = a.iter_live().collect();
        live.sort();
        assert_eq!(live, vec![(idx(0), 1), (idx(1), 2)]);
    }
}
