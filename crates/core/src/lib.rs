//! **RDT-LGC** — the optimal asynchronous garbage collector for RDT
//! checkpointing protocols (Schmidt, Garcia, Pedone, Buzato — ICDCS 2005),
//! plus the coordinated baselines it is evaluated against.
//!
//! # What this crate provides
//!
//! * [`RdtLgc`] — the paper's contribution: Algorithm 1's data structures
//!   (reference-counted *checkpoint control blocks* and the `UC` vector),
//!   Algorithm 2's normal-execution collection, and Algorithm 3's
//!   recovery-session rebuild (both the coordinated `LI` variant and the
//!   uncoordinated `DV` variant).
//! * [`GarbageCollector`] — the hook interface a checkpointing protocol
//!   drives: `after_checkpoint`, `after_receive`, `after_rollback`,
//!   `on_recovery_info`, `on_control`.
//! * [`CheckpointStore`] — the stable-storage model (dependency vector kept
//!   with each checkpoint, peak-occupancy accounting for the paper's
//!   `n`/`n+1` bounds).
//! * Baselines (Section 5 of the paper): [`NoGc`],
//!   [`SimpleCoordinatedGc`] (recovery line for the failure of all
//!   processes, after Bhargava & Lian) and [`WangGlobalGc`] (complete
//!   Theorem-1 elimination via distributed last-interval vectors, after
//!   Wang et al.).
//!
//! # Guarantees
//!
//! RDT-LGC is *safe* (Theorem 4: only obsolete checkpoints are eliminated)
//! and *optimal among asynchronous collectors* (Theorem 5: every obsolete
//! checkpoint identifiable from causal knowledge is eliminated). Its
//! retention never exceeds `n` checkpoints per process, `n + 1` transiently
//! while a new checkpoint is stored but the previous one not yet released
//! (Section 4.5). These properties are validated in this workspace against
//! the exhaustive oracles of the `rdt-ccp` crate.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod ccb;
mod lgc;
mod store;
mod theorem1;
mod traits;

pub use baselines::{NoGc, SimpleCoordinatedGc, TimeBasedGc, WangGlobalGc};
pub use ccb::{Ccb, CcbArena, CcbRef};
pub use lgc::RdtLgc;
pub use store::CheckpointStore;
pub use traits::{ControlInfo, GarbageCollector, GcKind, LastIntervals};
