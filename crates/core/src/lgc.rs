//! RDT-LGC — the paper's optimal asynchronous garbage collector
//! (Algorithms 1–3).

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId, UpdateSet};

use crate::ccb::{CcbArena, CcbRef};
use crate::store::CheckpointStore;
use crate::traits::{GarbageCollector, GcKind, LastIntervals};

/// The RDT-LGC garbage collector of one process.
///
/// Maintains the paper's `UC` vector (*Uncollected Checkpoints*: entry `f`
/// references the CCB of the checkpoint retained because of `p_f`) and a
/// [`CcbArena`] of reference-counted checkpoint control blocks.
///
/// Invariant (Theorem 3, Equation 4): whenever
/// `s_f^last → c_i^{γ+1} ∧ s_f^last ↛ s_i^γ`, entry `UC[f]` references the
/// CCB of `s_i^γ`. A checkpoint is eliminated exactly when no entry
/// references its CCB (Theorem 4: only obsolete checkpoints are collected;
/// Theorem 5: every causally identifiable obsolete checkpoint is).
///
/// # Example
///
/// ```
/// use rdt_base::{CheckpointIndex, DependencyVector, ProcessId, UpdateSet};
/// use rdt_core::{CheckpointStore, GarbageCollector, RdtLgc};
///
/// let p0 = ProcessId::new(0);
/// let mut gc = RdtLgc::new(p0, 2);
/// let mut store = CheckpointStore::new(p0);
/// let mut dv = DependencyVector::new(2);
///
/// // Initial checkpoint s_0^0.
/// store.insert(CheckpointIndex::ZERO, dv.clone());
/// gc.after_checkpoint(&mut store, CheckpointIndex::ZERO, &dv);
/// dv.begin_next_interval(p0);
///
/// // A second checkpoint makes s_0^0 obsolete: nobody depends on p0.
/// let c1 = CheckpointIndex::new(1);
/// store.insert(c1, dv.clone());
/// let gone = gc.after_checkpoint(&mut store, c1, &dv);
/// assert_eq!(gone, vec![CheckpointIndex::ZERO]);
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdtLgc {
    owner: ProcessId,
    uc: Vec<Option<CcbRef>>,
    arena: CcbArena,
}

impl RdtLgc {
    /// Creates the collector for `owner` in an `n`-process system
    /// (procedure `initialize`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `owner` is out of range.
    pub fn new(owner: ProcessId, n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        assert!(owner.index() < n, "owner out of range");
        Self {
            owner,
            uc: vec![None; n],
            arena: CcbArena::new(),
        }
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.uc.len()
    }

    /// Procedure `release(j)`: drop `UC[j]`'s reference; if the CCB dies,
    /// eliminate the checkpoint from `store` and report it.
    fn release(&mut self, j: ProcessId, store: &mut CheckpointStore) -> Option<CheckpointIndex> {
        let r = self.uc[j.index()].take()?;
        let freed = self.arena.dec(r)?;
        store
            .remove(freed)
            .expect("CCB-tracked checkpoint must be stored");
        Some(freed)
    }

    /// Procedure `link(j, i)`: make `UC[j]` share `UC[i]`'s CCB.
    fn link_to_own(&mut self, j: ProcessId) {
        let own = self.uc[self.owner.index()]
            .expect("UC[i] always references the last stable checkpoint");
        self.arena.inc(own);
        self.uc[j.index()] = Some(own);
    }

    /// Procedure `newCCB(i, ind)`.
    fn new_own_ccb(&mut self, index: CheckpointIndex) {
        self.uc[self.owner.index()] = Some(self.arena.alloc(index));
    }

    /// The checkpoint index each `UC` entry currently pins (`None` = the
    /// paper's `∗`), in process order — matches the tuples printed under
    /// each event in Figure 4.
    pub fn uc_view(&self) -> Vec<Option<CheckpointIndex>> {
        self.uc
            .iter()
            .map(|slot| slot.map(|r| self.arena.index_of(r)))
            .collect()
    }

    /// Indices of the checkpoints currently retained (live CCBs), ascending.
    pub fn retained(&self) -> Vec<CheckpointIndex> {
        let mut v: Vec<CheckpointIndex> = self.arena.iter_live().map(|(i, _)| i).collect();
        v.sort_unstable();
        v
    }

    /// Rebuilds `UC`/CCBs after a rollback (Algorithm 3 lines 7–17).
    ///
    /// For each process `f`, finds the latest stored checkpoint `γ` with
    /// `DV(s^γ)[f] < LI[f]` whose successor (next stored checkpoint, or the
    /// volatile state `dv`) satisfies `DV(c^{γ+1})[f] ≥ LI[f]`, and pins it.
    /// Everything unpinned is eliminated.
    fn rebuild_after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        li: &LastIntervals,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        self.arena.clear();
        self.uc = vec![None; self.uc.len()];

        let indices: Vec<CheckpointIndex> = store.indices().collect();
        // pins[k] = processes whose UC entry must reference indices[k].
        let pins = crate::theorem1::theorem1_pins(store, li, dv);

        let mut eliminated = Vec::new();
        for (k, fs) in pins.iter().enumerate() {
            let index = indices[k];
            if fs.is_empty() {
                store.remove(index).expect("stored");
                eliminated.push(index);
            } else {
                let r = self.arena.alloc(index); // rc = 1 covers fs[0]
                for _ in 1..fs.len() {
                    self.arena.inc(r);
                }
                for f in fs {
                    self.uc[f.index()] = Some(r);
                }
            }
        }
        eliminated
    }
}

impl GarbageCollector for RdtLgc {
    fn kind(&self) -> GcKind {
        GcKind::RdtLgc
    }

    /// "On taking checkpoint" (Algorithm 2): release the previous own CCB
    /// and create a new one for the just-stored checkpoint.
    fn after_checkpoint_into(
        &mut self,
        store: &mut CheckpointStore,
        index: CheckpointIndex,
        _dv: &DependencyVector,
        eliminated: &mut Vec<CheckpointIndex>,
    ) {
        debug_assert!(store.contains(index), "checkpoint stored before GC runs");
        eliminated.extend(self.release(self.owner, store));
        self.new_own_ccb(index);
    }

    /// "On receiving m" (Algorithm 2): each process that contributed new
    /// causal information now denies the collection of our last stable
    /// checkpoint — release its old pin and link it to ours.
    fn after_receive_into(
        &mut self,
        store: &mut CheckpointStore,
        updated: &UpdateSet,
        _dv: &DependencyVector,
        eliminated: &mut Vec<CheckpointIndex>,
    ) {
        let own = self.uc[self.owner.index()];
        for j in updated.iter() {
            debug_assert_ne!(
                j, self.owner,
                "a process cannot receive new causal information about itself"
            );
            // release(j) followed by link(j, i) is a net no-op when UC[j]
            // already references the own CCB (the common case in
            // news-heavy streams between checkpoints): the dec can never
            // free it — UC[i] holds a reference — and the re-link restores
            // the exact pre-release state.
            if self.uc[j.index()] == own {
                continue;
            }
            if let Some(freed) = self.release(j, store) {
                eliminated.push(freed);
            }
            self.link_to_own(j);
        }
    }

    /// Algorithm 3 (a process rolling back to `ri`): discard later
    /// checkpoints, then rebuild `UC` from `li` (or from `dv` when no global
    /// information is available — the uncoordinated variant).
    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        li: Option<&LastIntervals>,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let mut eliminated = store.truncate_after(ri);
        let li = match li {
            Some(li) => li.clone(),
            None => LastIntervals::from_dv(dv),
        };
        eliminated.extend(self.rebuild_after_rollback(store, &li, dv));
        eliminated
    }

    /// Non-rolling-back process during a synchronized recovery: release any
    /// `UC[f]` with `DV[f] < LI[f]` (Section 4.3).
    ///
    /// The comparison is lexicographic over incarnation-qualified entries:
    /// when `f` rolled back during the session, `LI[f]` carries `f`'s fresh
    /// incarnation, so *any* pre-rollback knowledge of `f` — however high
    /// its raw interval — reads as "does not know `f`'s new last checkpoint"
    /// and the stale pin is released.
    fn on_recovery_info(
        &mut self,
        store: &mut CheckpointStore,
        li: &LastIntervals,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let mut eliminated = Vec::new();
        for f in ProcessId::all(self.uc.len()) {
            if f == self.owner {
                continue;
            }
            if dv.lineage(f) < li.lineage(f) {
                if let Some(freed) = self.release(f, store) {
                    eliminated.push(freed);
                }
            }
        }
        eliminated
    }

    fn pinned(&self) -> usize {
        self.arena.live()
    }

    fn uc_snapshot(&self) -> Option<Vec<Option<CheckpointIndex>>> {
        Some(self.uc_view())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    /// Harness mirroring a single process's protocol-side state.
    struct Proc {
        gc: RdtLgc,
        store: CheckpointStore,
        dv: DependencyVector,
    }

    impl Proc {
        fn new(owner: usize, n: usize) -> Self {
            let owner = p(owner);
            let mut this = Self {
                gc: RdtLgc::new(owner, n),
                store: CheckpointStore::new(owner),
                dv: DependencyVector::new(n),
            };
            this.checkpoint(); // s^0
            this
        }

        fn checkpoint(&mut self) -> Vec<CheckpointIndex> {
            let index = self.dv.entry(self.gc.owner()).as_checkpoint();
            self.store.insert(index, self.dv.clone());
            let gone = self.gc.after_checkpoint(&mut self.store, index, &self.dv);
            self.dv.begin_next_interval(self.gc.owner());
            gone
        }

        fn receive(&mut self, sender_dv: &DependencyVector) -> Vec<CheckpointIndex> {
            let updated = self.dv.merge_from(sender_dv);
            self.gc.after_receive(&mut self.store, &updated, &self.dv)
        }
    }

    #[test]
    fn uc_self_entry_always_references_last_stable() {
        let mut a = Proc::new(0, 3);
        assert_eq!(a.gc.uc_view()[0], Some(idx(0)));
        a.checkpoint();
        assert_eq!(a.gc.uc_view()[0], Some(idx(1)));
        a.checkpoint();
        assert_eq!(a.gc.uc_view()[0], Some(idx(2)));
    }

    #[test]
    fn unreferenced_checkpoints_are_collected_on_next_checkpoint() {
        let mut a = Proc::new(0, 2);
        let gone = a.checkpoint();
        assert_eq!(gone, vec![idx(0)]);
        let gone = a.checkpoint();
        assert_eq!(gone, vec![idx(1)]);
        assert_eq!(a.store.len(), 1);
        // Transient n+1 behaviour: peak is 2 (new stored before old released).
        assert_eq!(a.store.peak(), 2);
    }

    #[test]
    fn new_dependency_pins_last_stable_checkpoint() {
        let mut a = Proc::new(0, 2);
        let mut b = Proc::new(1, 2);
        // b sends to a: a learns b's interval 1.
        let gone = a.receive(&b.dv);
        assert!(gone.is_empty());
        // UC[1] now references a's s^0 CCB.
        assert_eq!(a.gc.uc_view(), vec![Some(idx(0)), Some(idx(0))]);
        // a checkpoints: s^0 stays pinned by UC[1], s^1 referenced by UC[0].
        let gone = a.checkpoint();
        assert!(gone.is_empty());
        assert_eq!(a.gc.uc_view(), vec![Some(idx(1)), Some(idx(0))]);
        assert_eq!(a.store.len(), 2);
        // b sends again with fresh info (b checkpointed meanwhile):
        // UC[1] migrates to s^1, releasing s^0.
        b.checkpoint();
        let gone = a.receive(&b.dv);
        assert_eq!(gone, vec![idx(0)]);
        assert_eq!(a.gc.uc_view(), vec![Some(idx(1)), Some(idx(1))]);
    }

    #[test]
    fn stale_message_changes_nothing() {
        let mut a = Proc::new(0, 2);
        let b = Proc::new(1, 2);
        a.receive(&b.dv);
        let before = a.gc.uc_view();
        // Same vector again: no new causal info.
        let gone = a.receive(&b.dv);
        assert!(gone.is_empty());
        assert_eq!(a.gc.uc_view(), before);
    }

    #[test]
    fn retention_never_exceeds_n() {
        // Worst case: every peer pins a distinct checkpoint of a.
        let n = 4;
        let mut a = Proc::new(0, n);
        let mut peers: Vec<Proc> = (1..n).map(|i| Proc::new(i, n)).collect();
        for peer in peers.iter_mut() {
            let dv = peer.dv.clone();
            a.receive(&dv);
            a.checkpoint();
            peer.checkpoint(); // peers refresh so next receive brings news
        }
        assert!(a.gc.pinned() <= n);
        assert!(a.store.len() <= n);
        assert!(a.store.peak() <= n + 1);
    }

    #[test]
    fn rollback_with_global_info_keeps_only_pinned(/* Algorithm 3 */) {
        let n = 2;
        let mut a = Proc::new(0, n);
        let mut b = Proc::new(1, n);
        // a hears from b, checkpoints twice.
        a.receive(&b.dv);
        a.checkpoint(); // s^1 (s^0 pinned by UC[1])
        a.checkpoint(); // s^2 collects s^1
        assert_eq!(a.store.indices().collect::<Vec<_>>(), vec![idx(0), idx(2)]);

        // b fails and recovers at its initial checkpoint: LI = [3, 1]
        // (a's last stable is s^2 → LI[0]=3; b restored s^0 → LI[1]=1).
        // a is told to roll back to s^2 (its own RF component = volatile in
        // a real run; here we exercise the rolled-back path with ri = 2).
        b.dv = DependencyVector::new(n);
        b.dv.begin_next_interval(p(1));
        let li = LastIntervals::from_last_stable(&[idx(2), idx(0)]);
        let mut dv = a.store.dv(idx(2)).unwrap().clone();
        dv.begin_next_interval(p(0));
        let gone = a.gc.after_rollback(&mut a.store, idx(2), Some(&li), &dv);
        a.dv = dv;
        // s^0 was pinned only because of b's OLD run: with LI[1] = 1 and
        // DV(s^0)[1] = 0 < 1, is s^0 still pinned? Its successor s^2 has
        // DV(s^2)[1] = 1 ≥ 1, so yes: b's new s^0 still precedes a's s^2.
        assert!(gone.is_empty());
        assert_eq!(a.gc.uc_view(), vec![Some(idx(2)), Some(idx(0))]);
    }

    #[test]
    fn rollback_without_global_info_uses_dv() {
        let n = 2;
        let mut a = Proc::new(0, n);
        a.checkpoint();
        a.checkpoint();
        // Roll a back to s^1… which was collected; roll to s^2, the last.
        let ri = idx(2);
        let mut dv = a.store.dv(ri).unwrap().clone();
        dv.begin_next_interval(p(0));
        let gone = a.gc.after_rollback(&mut a.store, ri, None, &dv);
        assert!(gone.is_empty());
        assert_eq!(a.store.indices().collect::<Vec<_>>(), vec![ri]);
        assert_eq!(a.gc.uc_view(), vec![Some(ri), None]);
    }

    #[test]
    fn rollback_discards_later_checkpoints() {
        let n = 2;
        let mut a = Proc::new(0, n);
        let b = Proc::new(1, n);
        a.receive(&b.dv); // pins s^0
        a.checkpoint(); // s^1
        a.checkpoint(); // s^2; store = {0, 1?…}
                        // store now {0, 2}: s^1 was collected (only UC[0] referenced it).
        let mut dv = a.store.dv(idx(0)).unwrap().clone();
        dv.begin_next_interval(p(0));
        let li = LastIntervals::from_last_stable(&[idx(0), idx(0)]);
        let gone = a.gc.after_rollback(&mut a.store, idx(0), Some(&li), &dv);
        assert_eq!(gone, vec![idx(2)]);
        assert_eq!(a.store.indices().collect::<Vec<_>>(), vec![idx(0)]);
        assert_eq!(a.gc.uc_view()[0], Some(idx(0)));
    }

    #[test]
    fn recovery_info_releases_stale_pins() {
        let n = 2;
        let mut a = Proc::new(0, n);
        let b = Proc::new(1, n);
        a.receive(&b.dv); // UC[1] pins s^0
        a.checkpoint(); // s^1
        assert_eq!(a.store.len(), 2);
        // b rolls back to s^0: in the new CCP b's last interval is 1, and
        // a's DV[1] = 1 which is NOT < 1 — pin stays (b's s^0 unchanged).
        let li = LastIntervals::from_last_stable(&[idx(1), idx(0)]);
        let gone = a.gc.on_recovery_info(&mut a.store, &li, &a.dv.clone());
        assert!(gone.is_empty());
        // If b instead recovered having NEVER been heard of (fresh LI with
        // entry 2, pretending b checkpointed beyond a's knowledge)… then
        // DV[1] = 1 < 2 and the pin is released, collecting s^0.
        let li = LastIntervals::from_last_stable(&[idx(1), idx(1)]);
        let gone = a.gc.on_recovery_info(&mut a.store, &li, &a.dv.clone());
        assert_eq!(gone, vec![idx(0)]);
        assert_eq!(a.store.len(), 1);
    }

    #[test]
    fn shared_ccb_reference_counting_across_entries() {
        let n = 3;
        let mut a = Proc::new(0, n);
        let b = Proc::new(1, n);
        let c = Proc::new(2, n);
        // Both b and c pin a's s^0 through one receive each.
        a.receive(&b.dv);
        a.receive(&c.dv);
        let view = a.gc.uc_view();
        assert_eq!(view, vec![Some(idx(0)), Some(idx(0)), Some(idx(0))]);
        // One CCB, rc = 3.
        assert_eq!(a.gc.pinned(), 1);
        a.checkpoint(); // UC[0] moves; s^0 still pinned by UC[1], UC[2].
        assert_eq!(a.gc.pinned(), 2);
        assert_eq!(a.store.len(), 2);
    }
}
