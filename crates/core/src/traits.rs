//! The garbage-collector interface shared by RDT-LGC and the baselines.

use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::{
    CheckpointIndex, DependencyVector, DvEntry, Incarnation, IntervalIndex, ProcessId, UpdateSet,
};

use crate::store::CheckpointStore;

/// The *last interval vector* a recovery manager distributes during a
/// synchronized recovery session: `LI[j] = last_s(j) + 1` in the CCP defined
/// by the recovery-line cut (Section 4.3, Algorithm 3).
///
/// Entries are incarnation-qualified ([`DvEntry`]): for a process that rolls
/// back during the session, `LI[j]` carries the *fresh* incarnation opened
/// by the rollback, so lexicographic comparison against any pre-rollback
/// knowledge (`DV[j] < LI[j]`) correctly reads "this state does not know
/// `p_j`'s post-recovery last checkpoint" even though the raw interval
/// indices alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LastIntervals(Vec<DvEntry>);

impl LastIntervals {
    /// Builds from per-process last-stable indices (`LI[j] = last_s(j)+1`),
    /// all in the initial incarnation — the crash-free constructor.
    pub fn from_last_stable(last_stable: &[CheckpointIndex]) -> Self {
        Self(
            last_stable
                .iter()
                .map(|c| DvEntry::new(Incarnation::ZERO, c.interval_after()))
                .collect(),
        )
    }

    /// Builds from per-process `(last stable, incarnation)` pairs — the
    /// recovery manager's constructor, carrying each process's post-session
    /// incarnation.
    pub fn from_components(components: &[(CheckpointIndex, Incarnation)]) -> Self {
        Self(
            components
                .iter()
                .map(|&(c, v)| DvEntry::new(v, c.interval_after()))
                .collect(),
        )
    }

    /// Builds directly from interval indices (initial incarnation).
    pub fn from_intervals(intervals: Vec<IntervalIndex>) -> Self {
        Self(
            intervals
                .into_iter()
                .map(|g| DvEntry::new(Incarnation::ZERO, g))
                .collect(),
        )
    }

    /// Reuses a dependency vector as the interval source — the paper's
    /// uncoordinated variant, "replacing LI by DV in line 9".
    pub fn from_dv(dv: &DependencyVector) -> Self {
        Self(dv.as_slice().to_vec())
    }

    /// The interval component of the entry for process `j`.
    pub fn entry(&self, j: ProcessId) -> IntervalIndex {
        self.0[j.index()].interval()
    }

    /// The full incarnation-qualified entry for process `j`.
    pub fn lineage(&self, j: ProcessId) -> DvEntry {
        self.0[j.index()]
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for LastIntervals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LI(")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Which garbage-collection algorithm a process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcKind {
    /// The paper's asynchronous, optimal RDT-LGC (Algorithms 1–3).
    RdtLgc,
    /// No garbage collection at all — the divergence baseline.
    None,
    /// The simple coordinated scheme of Bhargava/Lian and the Elnozahy
    /// survey: periodically compute the recovery line for the failure of all
    /// processes and discard everything before it. Needs control messages.
    SimpleCoordinated,
    /// Wang et al.'s coordinated collector: distribute the global
    /// last-interval vector and eliminate every Theorem-1 obsolete
    /// checkpoint. Needs control messages; collects *all* obsolete
    /// checkpoints.
    WangGlobal,
    /// The time-based class of Manivannan & Singhal: discard checkpoints
    /// older than `horizon` ticks, *assuming* processes checkpoint in known
    /// time intervals and message delays are bounded. No control messages —
    /// but **unsafe when the assumption breaks** (the paper's §5 critique:
    /// "unfeasible in many practical scenarios"). Kept as the comparator
    /// showing why RDT-LGC's causal condition matters.
    TimeBased {
        /// Age (in simulation ticks) past which checkpoints are discarded.
        horizon: u64,
    },
}

impl GcKind {
    /// Default discard horizon for [`GcKind::TimeBased`] sweeps, in ticks.
    pub const DEFAULT_HORIZON: u64 = 500;

    /// All kinds, for sweeps.
    pub const ALL: [GcKind; 5] = [
        GcKind::RdtLgc,
        GcKind::None,
        GcKind::SimpleCoordinated,
        GcKind::WangGlobal,
        GcKind::TimeBased {
            horizon: Self::DEFAULT_HORIZON,
        },
    ];

    /// Whether this collector relies on control-message rounds.
    pub fn needs_control_messages(self) -> bool {
        matches!(self, GcKind::SimpleCoordinated | GcKind::WangGlobal)
    }

    /// Whether this collector's *safety* rests on real-time assumptions
    /// (bounded checkpoint intervals and message delays).
    pub fn needs_time_assumptions(self) -> bool {
        matches!(self, GcKind::TimeBased { .. })
    }

    /// Whether this collector is asynchronous in the paper's sense
    /// (Definition 8): coordination only through information piggybacked in
    /// application messages, no control rounds, no time assumptions.
    pub fn is_asynchronous(self) -> bool {
        !self.needs_control_messages() && !self.needs_time_assumptions()
    }

    /// Instantiates the collector for a process in an `n`-process system.
    pub fn build(self, owner: ProcessId, n: usize) -> Box<dyn GarbageCollector> {
        match self {
            GcKind::RdtLgc => Box::new(crate::lgc::RdtLgc::new(owner, n)),
            GcKind::None => Box::new(crate::baselines::NoGc::new()),
            GcKind::SimpleCoordinated => Box::new(crate::baselines::SimpleCoordinatedGc::new()),
            GcKind::WangGlobal => Box::new(crate::baselines::WangGlobalGc::new(n)),
            GcKind::TimeBased { horizon } => Box::new(crate::baselines::TimeBasedGc::new(horizon)),
        }
    }
}

impl fmt::Display for GcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GcKind::RdtLgc => "rdt-lgc",
            GcKind::None => "no-gc",
            GcKind::SimpleCoordinated => "simple-coordinated",
            GcKind::WangGlobal => "wang-global",
            GcKind::TimeBased { horizon } => return write!(f, "time-based({horizon})"),
        };
        f.write_str(s)
    }
}

/// Control information a coordinator distributes to coordinated collectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlInfo {
    /// The recovery line for the failure of all processes (`R_Π`): everything
    /// strictly before a process's component is discarded.
    GlobalLine(Vec<CheckpointIndex>),
    /// The global last-interval vector, enabling Theorem-1 elimination.
    LastIntervals(LastIntervals),
}

/// An online, per-process checkpoint garbage collector.
///
/// The checkpointing protocol owns the dependency vector and the
/// [`CheckpointStore`]; it invokes these hooks at the paper's event points.
/// Hooks **remove collected checkpoints from the store themselves** and
/// return the eliminated indices for accounting.
///
/// Implementations must uphold *safety*: never eliminate a checkpoint that
/// is not obsolete (Theorem 1) in the CCP of any consistent cut containing
/// the current local state.
pub trait GarbageCollector: fmt::Debug + Send {
    /// Which algorithm this is.
    fn kind(&self) -> GcKind;

    /// Called right after checkpoint `index` (with vector `dv`) was written
    /// to `store` ("On taking checkpoint", Algorithm 2). The store already
    /// contains the new checkpoint — the paper's transient `n + 1` occupancy.
    ///
    /// Eliminated checkpoints are **appended** to `eliminated`, a
    /// caller-owned scratch buffer reused across events — the hot path
    /// allocates nothing here.
    fn after_checkpoint_into(
        &mut self,
        store: &mut CheckpointStore,
        index: CheckpointIndex,
        dv: &DependencyVector,
        eliminated: &mut Vec<CheckpointIndex>,
    );

    /// Allocating convenience wrapper over
    /// [`after_checkpoint_into`](Self::after_checkpoint_into).
    fn after_checkpoint(
        &mut self,
        store: &mut CheckpointStore,
        index: CheckpointIndex,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let mut eliminated = Vec::new();
        self.after_checkpoint_into(store, index, dv, &mut eliminated);
        eliminated
    }

    /// Called after a received message merged new causal information for the
    /// processes in `updated` ("On receiving m", Algorithm 2). `dv` is the
    /// post-merge dependency vector. The update report is the bitset
    /// [`DependencyVector::merge_from`] produced, and eliminations are
    /// **appended** to the caller-owned `eliminated` buffer — no allocation
    /// crosses this boundary on the hot path.
    fn after_receive_into(
        &mut self,
        store: &mut CheckpointStore,
        updated: &UpdateSet,
        dv: &DependencyVector,
        eliminated: &mut Vec<CheckpointIndex>,
    );

    /// Allocating convenience wrapper over
    /// [`after_receive_into`](Self::after_receive_into).
    fn after_receive(
        &mut self,
        store: &mut CheckpointStore,
        updated: &UpdateSet,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let mut eliminated = Vec::new();
        self.after_receive_into(store, updated, dv, &mut eliminated);
        eliminated
    }

    /// Recovery session, rolling-back process (Algorithm 3): the process has
    /// restored checkpoint `ri`; `li` is the distributed last-interval vector
    /// (`None` for the uncoordinated variant, which falls back to `dv`).
    /// `dv` is the post-rollback dependency vector (restored and bumped).
    ///
    /// Implementations must discard checkpoints with index `> ri` and may
    /// eliminate whatever the available information proves obsolete.
    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        li: Option<&LastIntervals>,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex>;

    /// Recovery session, non-rolling-back process with global information:
    /// the paper's note that such a process "can just release any entry
    /// `UC[f]` such that `DV[f] < LI[f]`".
    fn on_recovery_info(
        &mut self,
        store: &mut CheckpointStore,
        li: &LastIntervals,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let _ = (store, li, dv);
        Vec::new()
    }

    /// Clock tick for time-based collectors: `now` is the current local
    /// time, in the same unit as the [`GcKind::TimeBased`] horizon.
    /// Asynchronous and coordinated collectors ignore it.
    fn on_tick(
        &mut self,
        store: &mut CheckpointStore,
        now: u64,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let _ = (store, now, dv);
        Vec::new()
    }

    /// Out-of-band control round for coordinated baselines; asynchronous
    /// collectors ignore it. `dv` is the process's current dependency vector
    /// (the volatile state's view, needed for Theorem-1 elimination).
    fn on_control(
        &mut self,
        store: &mut CheckpointStore,
        info: &ControlInfo,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let _ = (store, info, dv);
        Vec::new()
    }

    /// Number of checkpoints currently pinned by this collector's own
    /// bookkeeping (for RDT-LGC, live CCBs). Purely informational.
    fn pinned(&self) -> usize {
        0
    }

    /// The collector's `UC` vector, if it maintains one (RDT-LGC does):
    /// entry `f` is the checkpoint index pinned because of `p_f`, `None`
    /// rendering as the paper's `∗`. Purely informational — used to print
    /// the paper's Figure 4 tuples.
    fn uc_snapshot(&self) -> Option<Vec<Option<CheckpointIndex>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_intervals_from_last_stable() {
        let li =
            LastIntervals::from_last_stable(&[CheckpointIndex::new(2), CheckpointIndex::new(0)]);
        assert_eq!(li.entry(ProcessId::new(0)), IntervalIndex::new(3));
        assert_eq!(li.entry(ProcessId::new(1)), IntervalIndex::new(1));
        assert_eq!(li.to_string(), "LI(3, 1)");
    }

    #[test]
    fn last_intervals_from_dv_is_verbatim() {
        let dv = DependencyVector::from_raw(vec![4, 0, 2]);
        let li = LastIntervals::from_dv(&dv);
        assert_eq!(li.entry(ProcessId::new(0)), IntervalIndex::new(4));
        assert_eq!(li.entry(ProcessId::new(2)), IntervalIndex::new(2));
    }

    #[test]
    fn gc_kind_control_message_classification() {
        assert!(!GcKind::RdtLgc.needs_control_messages());
        assert!(!GcKind::None.needs_control_messages());
        assert!(GcKind::SimpleCoordinated.needs_control_messages());
        assert!(GcKind::WangGlobal.needs_control_messages());
    }

    #[test]
    fn gc_kind_builds_every_variant() {
        for kind in GcKind::ALL {
            let gc = kind.build(ProcessId::new(0), 3);
            assert_eq!(gc.kind(), kind);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(GcKind::RdtLgc.to_string(), "rdt-lgc");
        assert_eq!(GcKind::WangGlobal.to_string(), "wang-global");
    }
}
