//! Baseline garbage collectors the paper compares against (Section 5).

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointIndex, DependencyVector, UpdateSet};

use crate::store::CheckpointStore;
use crate::theorem1::theorem1_pins;
use crate::traits::{ControlInfo, GarbageCollector, GcKind, LastIntervals};

/// No garbage collection at all: stable storage grows without bound. The
/// divergence baseline for the storage-overhead experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoGc;

impl NoGc {
    /// Creates the collector.
    pub fn new() -> Self {
        Self
    }
}

impl GarbageCollector for NoGc {
    fn kind(&self) -> GcKind {
        GcKind::None
    }

    fn after_checkpoint_into(
        &mut self,
        _store: &mut CheckpointStore,
        _index: CheckpointIndex,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_receive_into(
        &mut self,
        _store: &mut CheckpointStore,
        _updated: &UpdateSet,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        _li: Option<&LastIntervals>,
        _dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        // Rolled-back states are gone regardless of GC policy.
        store.truncate_after(ri)
    }
}

/// The simple coordinated scheme (\[5\] Bhargava & Lian, \[8\] Elnozahy et al.):
/// a coordinator periodically computes the recovery line for the failure of
/// **all** processes (`R_Π`) and every process discards the checkpoints
/// strictly older than its component.
///
/// Correct but not tight: it does not bound uncollected checkpoints between
/// rounds and never collects obsolete checkpoints newer than the `R_Π`
/// component. Relies on reliable control messages (the coordination the
/// paper's asynchronous collector removes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimpleCoordinatedGc {
    rounds: u64,
}

impl SimpleCoordinatedGc {
    /// Creates the collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of control rounds processed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl GarbageCollector for SimpleCoordinatedGc {
    fn kind(&self) -> GcKind {
        GcKind::SimpleCoordinated
    }

    fn after_checkpoint_into(
        &mut self,
        _store: &mut CheckpointStore,
        _index: CheckpointIndex,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_receive_into(
        &mut self,
        _store: &mut CheckpointStore,
        _updated: &UpdateSet,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        _li: Option<&LastIntervals>,
        _dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        store.truncate_after(ri)
    }

    fn on_control(
        &mut self,
        store: &mut CheckpointStore,
        info: &ControlInfo,
        _dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let ControlInfo::GlobalLine(line) = info else {
            return Vec::new();
        };
        self.rounds += 1;
        let floor = line[store.owner().index()];
        let doomed: Vec<CheckpointIndex> = store.indices().take_while(|&i| i < floor).collect();
        for d in &doomed {
            store.remove(*d).expect("stored");
        }
        doomed
    }
}

/// Wang et al.'s coordinated collector (\[21\]): a coordinator distributes the
/// global last-interval vector and each process eliminates **every**
/// Theorem-1 obsolete checkpoint. This is the "collects all obsolete
/// checkpoints" comparator — tighter than any asynchronous collector can be
/// (it sees `last_s(f)` for all `f`, not just causally learned values), at
/// the cost of reliable control-message rounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WangGlobalGc {
    n: usize,
    rounds: u64,
}

impl WangGlobalGc {
    /// Creates the collector for an `n`-process system.
    pub fn new(n: usize) -> Self {
        Self { n, rounds: 0 }
    }

    /// Number of control rounds processed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    fn eliminate_unpinned(
        store: &mut CheckpointStore,
        li: &LastIntervals,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let indices: Vec<CheckpointIndex> = store.indices().collect();
        let pins = theorem1_pins(store, li, dv);
        let mut eliminated = Vec::new();
        for (k, fs) in pins.iter().enumerate() {
            if fs.is_empty() {
                store.remove(indices[k]).expect("stored");
                eliminated.push(indices[k]);
            }
        }
        eliminated
    }
}

impl GarbageCollector for WangGlobalGc {
    fn kind(&self) -> GcKind {
        GcKind::WangGlobal
    }

    fn after_checkpoint_into(
        &mut self,
        _store: &mut CheckpointStore,
        _index: CheckpointIndex,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_receive_into(
        &mut self,
        _store: &mut CheckpointStore,
        _updated: &UpdateSet,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        li: Option<&LastIntervals>,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let mut eliminated = store.truncate_after(ri);
        if let Some(li) = li {
            eliminated.extend(Self::eliminate_unpinned(store, li, dv));
        }
        eliminated
    }

    fn on_control(
        &mut self,
        store: &mut CheckpointStore,
        info: &ControlInfo,
        dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let ControlInfo::LastIntervals(li) = info else {
            return Vec::new();
        };
        self.rounds += 1;
        Self::eliminate_unpinned(store, li, dv)
    }
}

/// The time-based class of Manivannan & Singhal (\[14\]): checkpoints older
/// than a fixed horizon are discarded, with safety resting on the assumption
/// that every process takes checkpoints in known time intervals and message
/// delays are bounded by the horizon.
///
/// No control messages and no piggybacked information are needed — but when
/// the assumption breaks (a slow channel, a quiet process), this collector
/// **eliminates checkpoints a future recovery line still needs**. The
/// `table_safety` experiment quantifies those violations against the
/// Theorem-1 oracle; RDT-LGC never produces any.
///
/// The most recent stable checkpoint is always retained regardless of age
/// (rolling back requires *some* stable state).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBasedGc {
    horizon: u64,
    now: u64,
    /// Local storage times of the retained checkpoints.
    stored_at: std::collections::BTreeMap<CheckpointIndex, u64>,
}

impl TimeBasedGc {
    /// Creates the collector with a discard horizon in ticks.
    pub fn new(horizon: u64) -> Self {
        Self {
            horizon,
            now: 0,
            stored_at: std::collections::BTreeMap::new(),
        }
    }

    /// The configured horizon.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The last tick observed.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Discards every stored checkpoint older than the horizon, except the
    /// most recent one.
    fn expire(&mut self, store: &mut CheckpointStore) -> Vec<CheckpointIndex> {
        let Some(last) = store.last() else {
            return Vec::new();
        };
        let deadline = self.now.saturating_sub(self.horizon);
        let doomed: Vec<CheckpointIndex> = store
            .indices()
            .filter(|&i| i != last && self.stored_at.get(&i).copied().unwrap_or(0) < deadline)
            .collect();
        for d in &doomed {
            store.remove(*d).expect("stored");
            self.stored_at.remove(d);
        }
        doomed
    }
}

impl GarbageCollector for TimeBasedGc {
    fn kind(&self) -> GcKind {
        GcKind::TimeBased {
            horizon: self.horizon,
        }
    }

    fn after_checkpoint_into(
        &mut self,
        store: &mut CheckpointStore,
        index: CheckpointIndex,
        _dv: &DependencyVector,
        eliminated: &mut Vec<CheckpointIndex>,
    ) {
        self.stored_at.insert(index, self.now);
        eliminated.extend(self.expire(store));
    }

    fn after_receive_into(
        &mut self,
        _store: &mut CheckpointStore,
        _updated: &UpdateSet,
        _dv: &DependencyVector,
        _eliminated: &mut Vec<CheckpointIndex>,
    ) {
    }

    fn after_rollback(
        &mut self,
        store: &mut CheckpointStore,
        ri: CheckpointIndex,
        _li: Option<&LastIntervals>,
        _dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        let doomed = store.truncate_after(ri);
        for d in &doomed {
            self.stored_at.remove(d);
        }
        doomed
    }

    fn on_tick(
        &mut self,
        store: &mut CheckpointStore,
        now: u64,
        _dv: &DependencyVector,
    ) -> Vec<CheckpointIndex> {
        self.now = self.now.max(now);
        self.expire(store)
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::{IntervalIndex, ProcessId};

    use super::*;

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    fn store_with_chain(owner: usize, n_ckpts: usize, n: usize) -> CheckpointStore {
        let mut store = CheckpointStore::new(ProcessId::new(owner));
        let mut dv = DependencyVector::new(n);
        for _ in 0..n_ckpts {
            store.insert(dv.entry(ProcessId::new(owner)).as_checkpoint(), dv.clone());
            dv.begin_next_interval(ProcessId::new(owner));
        }
        store
    }

    #[test]
    fn no_gc_retains_everything() {
        let mut gc = NoGc::new();
        let mut store = store_with_chain(0, 5, 2);
        let dv = DependencyVector::from_raw(vec![5, 0]);
        assert!(gc.after_checkpoint(&mut store, idx(4), &dv).is_empty());
        assert!(gc
            .after_receive(&mut store, &UpdateSet::new(), &dv)
            .is_empty());
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn no_gc_still_truncates_on_rollback() {
        let mut gc = NoGc::new();
        let mut store = store_with_chain(0, 5, 2);
        let dv = DependencyVector::from_raw(vec![3, 0]);
        let gone = gc.after_rollback(&mut store, idx(2), None, &dv);
        assert_eq!(gone, vec![idx(3), idx(4)]);
    }

    #[test]
    fn simple_coordinated_discards_before_global_line() {
        let mut gc = SimpleCoordinatedGc::new();
        let mut store = store_with_chain(0, 5, 2);
        let dv = DependencyVector::from_raw(vec![5, 0]);
        let info = ControlInfo::GlobalLine(vec![idx(3), idx(0)]);
        let gone = gc.on_control(&mut store, &info, &dv);
        assert_eq!(gone, vec![idx(0), idx(1), idx(2)]);
        assert_eq!(store.len(), 2);
        assert_eq!(gc.rounds(), 1);
    }

    #[test]
    fn simple_coordinated_ignores_wrong_control_info() {
        let mut gc = SimpleCoordinatedGc::new();
        let mut store = store_with_chain(0, 3, 2);
        let dv = DependencyVector::from_raw(vec![3, 0]);
        let info = ControlInfo::LastIntervals(LastIntervals::from_dv(&dv));
        assert!(gc.on_control(&mut store, &info, &dv).is_empty());
        assert_eq!(gc.rounds(), 0);
    }

    #[test]
    fn wang_global_collects_all_theorem1_obsolete() {
        let mut gc = WangGlobalGc::new(2);
        // Owner p0 with 4 lone checkpoints: only the last is non-obsolete.
        let mut store = store_with_chain(0, 4, 2);
        let dv = DependencyVector::from_raw(vec![4, 0]);
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(4), IntervalIndex::new(1)]);
        let gone = gc.on_control(&mut store, &ControlInfo::LastIntervals(li), &dv);
        assert_eq!(gone, vec![idx(0), idx(1), idx(2)]);
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(3)]);
    }

    #[test]
    fn wang_global_respects_peer_pins() {
        let mut gc = WangGlobalGc::new(2);
        let owner = ProcessId::new(0);
        let mut store = CheckpointStore::new(owner);
        // s^0 ignorant of p1; s^1 knows p1's final interval 2.
        store.insert(idx(0), DependencyVector::from_raw(vec![0, 0]));
        store.insert(idx(1), DependencyVector::from_raw(vec![1, 2]));
        let dv = DependencyVector::from_raw(vec![2, 2]);
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(2), IntervalIndex::new(2)]);
        let gone = gc.on_control(&mut store, &ControlInfo::LastIntervals(li), &dv);
        // s^0 is pinned by p1 (s_1^last → s^1, ↛ s^0): nothing collected.
        assert!(gone.is_empty());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn time_based_expires_old_checkpoints_but_keeps_the_last() {
        let mut gc = TimeBasedGc::new(100);
        let mut store = CheckpointStore::new(ProcessId::new(0));
        let dv = DependencyVector::from_raw(vec![1, 0]);
        gc.on_tick(&mut store, 0, &dv);
        store.insert(idx(0), dv.clone());
        gc.after_checkpoint(&mut store, idx(0), &dv);
        gc.on_tick(&mut store, 50, &dv);
        store.insert(idx(1), dv.clone());
        gc.after_checkpoint(&mut store, idx(1), &dv);
        // Not yet expired.
        assert_eq!(store.len(), 2);
        // idx(0) (stored at 0) expires past tick 100; idx(1) survives as the
        // most recent even once its age exceeds the horizon.
        let gone = gc.on_tick(&mut store, 101, &dv);
        assert_eq!(gone, vec![idx(0)]);
        let gone = gc.on_tick(&mut store, 10_000, &dv);
        assert!(gone.is_empty());
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(1)]);
    }

    #[test]
    fn time_based_violates_safety_when_the_assumption_breaks() {
        // s^0 is pinned by p1 under Theorem 1 (same store as the
        // wang_global_respects_peer_pins test) — but the time-based rule
        // discards it anyway once it ages out: a safety violation.
        let mut gc = TimeBasedGc::new(10);
        let owner = ProcessId::new(0);
        let mut store = CheckpointStore::new(owner);
        store.insert(idx(0), DependencyVector::from_raw(vec![0, 0]));
        gc.after_checkpoint(&mut store, idx(0), &DependencyVector::from_raw(vec![0, 0]));
        store.insert(idx(1), DependencyVector::from_raw(vec![1, 2]));
        gc.after_checkpoint(&mut store, idx(1), &DependencyVector::from_raw(vec![1, 2]));
        let dv = DependencyVector::from_raw(vec![2, 2]);
        let gone = gc.on_tick(&mut store, 1_000, &dv);
        assert_eq!(gone, vec![idx(0)], "the pinned checkpoint was collected");
    }

    #[test]
    fn time_based_rollback_truncates_and_forgets_timestamps() {
        let mut gc = TimeBasedGc::new(100);
        let mut store = store_with_chain(0, 4, 2);
        for i in 0..4 {
            gc.after_checkpoint(&mut store, idx(i), &DependencyVector::new(2));
        }
        let dv = DependencyVector::from_raw(vec![2, 0]);
        let gone = gc.after_rollback(&mut store, idx(1), None, &dv);
        assert_eq!(gone, vec![idx(2), idx(3)]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn time_based_kind_round_trips_the_horizon() {
        let gc = TimeBasedGc::new(42);
        assert_eq!(gc.kind(), GcKind::TimeBased { horizon: 42 });
        assert_eq!(gc.kind().to_string(), "time-based(42)");
        assert!(gc.kind().needs_time_assumptions());
        assert!(!gc.kind().is_asynchronous());
        assert!(!gc.kind().needs_control_messages());
        assert!(GcKind::RdtLgc.is_asynchronous());
    }

    #[test]
    fn wang_rollback_applies_theorem1_when_li_present() {
        let mut gc = WangGlobalGc::new(2);
        let mut store = store_with_chain(0, 5, 2);
        let dv = DependencyVector::from_raw(vec![3, 0]);
        let li = LastIntervals::from_intervals(vec![IntervalIndex::new(3), IntervalIndex::new(1)]);
        let gone = gc.after_rollback(&mut store, idx(2), Some(&li), &dv);
        // 3, 4 truncated; 0, 1 obsolete; 2 retained.
        assert_eq!(gone, vec![idx(3), idx(4), idx(0), idx(1)]);
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(2)]);
    }
}
