//! Per-process stable-storage model for checkpoints.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointIndex, DependencyVector, Error, Incarnation, ProcessId, Result};

/// The stable checkpoints a process currently holds, with the dependency
/// vector stored alongside each one (Section 4.2: "when a stable checkpoint
/// is taken, the current dependency vector is stored with it for recovery
/// purposes").
///
/// The store also tracks its **peak occupancy**, which is how the paper's
/// space bounds are measured: RDT-LGC retains at most `n` checkpoints per
/// process, `n + 1` transiently while a new checkpoint is being stored but
/// the previous one has not yet been released (Section 4.5).
///
/// Entries live in a deque sorted by checkpoint index. Checkpoint indices
/// are assigned monotonically, so insertion is an O(1) back-append (a
/// binary search only runs in the never-taken out-of-order case); lookups
/// binary-search; and since garbage collection almost always eliminates
/// the *oldest* retained checkpoint, removal usually shifts the short
/// front side — O(1) for the dominant pattern. For the n-bounded occupancy
/// RDT-LGC guarantees, this beats a `BTreeMap` on every hot operation, and
/// the unbounded `NoGc` baseline only ever appends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStore {
    owner: ProcessId,
    entries: VecDeque<(CheckpointIndex, StoredCheckpoint)>,
    /// Highest incarnation the owner has ever opened — the Strom/Yemini
    /// incarnation log. Rollbacks raise it *in stable storage* so a process
    /// restarting from disk can never reuse an incarnation number its dead
    /// execution already propagated.
    incarnation_floor: Incarnation,
    peak: usize,
    total_stored: usize,
    total_collected: usize,
    bytes: usize,
    peak_bytes: usize,
    total_bytes_stored: usize,
}

/// One stable checkpoint at rest: its dependency vector (stored for
/// recovery, Section 4.2) and the application-state size it occupies.
///
/// The vector lives inline in the entry: with the sorted-vector layout an
/// insert is a single append-move and a removal a short memmove, so for
/// systems of up to 16 processes (inline vectors) the whole store cycle —
/// insert, collect, remove — runs without touching the allocator or an
/// atomic refcount.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct StoredCheckpoint {
    dv: DependencyVector,
    bytes: usize,
}

impl CheckpointStore {
    /// Creates an empty store for `owner`.
    pub fn new(owner: ProcessId) -> Self {
        Self {
            owner,
            entries: VecDeque::new(),
            incarnation_floor: Incarnation::ZERO,
            peak: 0,
            total_stored: 0,
            total_collected: 0,
            bytes: 0,
            peak_bytes: 0,
            total_bytes_stored: 0,
        }
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The highest incarnation the owner has ever opened (the incarnation
    /// log). A restart must resume at an incarnation strictly above every
    /// one the previous executions used — reading only the stored
    /// checkpoints' vectors is not enough, because rollbacks do not store
    /// checkpoints.
    pub fn incarnation_floor(&self) -> Incarnation {
        self.incarnation_floor
    }

    /// Records that the owner opened incarnation `v` (monotone: lower
    /// values are ignored). Called by the recovery layer on every rollback,
    /// *before* the process resumes execution.
    pub fn raise_incarnation_floor(&mut self, v: Incarnation) {
        self.incarnation_floor = self.incarnation_floor.max(v);
    }

    /// Stores checkpoint `index` with its dependency vector.
    ///
    /// # Panics
    ///
    /// Panics if `index` is already present — checkpoint indices are unique
    /// within a normal execution period (rollbacks eliminate before reuse).
    pub fn insert(&mut self, index: CheckpointIndex, dv: DependencyVector) {
        self.insert_with_size(index, dv, 0);
    }

    /// Stores checkpoint `index` with its dependency vector and the size of
    /// the application state snapshot, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `index` is already present.
    pub fn insert_with_size(&mut self, index: CheckpointIndex, dv: DependencyVector, bytes: usize) {
        let stored = StoredCheckpoint { dv, bytes };
        match self.entries.back() {
            // The always-taken path: checkpoint indices grow monotonically.
            Some(&(last, _)) if index > last => self.entries.push_back((index, stored)),
            None => self.entries.push_back((index, stored)),
            Some(_) => match self.position(index) {
                Ok(_) => panic!("checkpoint {index} stored twice"),
                Err(at) => self.entries.insert(at, (index, stored)),
            },
        }
        self.total_stored += 1;
        self.peak = self.peak.max(self.entries.len());
        self.bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.total_bytes_stored += bytes;
    }

    /// Binary-search position of `index` in the sorted entry vector.
    fn position(&self, index: CheckpointIndex) -> std::result::Result<usize, usize> {
        self.entries.binary_search_by_key(&index, |&(i, _)| i)
    }

    /// Eliminates checkpoint `index`.
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointNotInStorage`] if absent.
    pub fn remove(&mut self, index: CheckpointIndex) -> Result<()> {
        match self.position(index) {
            Ok(at) => {
                let (_, stored) = self.entries.remove(at).expect("position is in bounds");
                self.total_collected += 1;
                self.bytes -= stored.bytes;
                Ok(())
            }
            Err(_) => Err(Error::CheckpointNotInStorage {
                process: self.owner,
                index,
            }),
        }
    }

    /// The dependency vector stored with `index`.
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointNotInStorage`] if absent.
    pub fn dv(&self, index: CheckpointIndex) -> Result<&DependencyVector> {
        self.position(index)
            .ok()
            .map(|at| &self.entries[at].1.dv)
            .ok_or(Error::CheckpointNotInStorage {
                process: self.owner,
                index,
            })
    }

    /// Whether `index` is currently stored.
    pub fn contains(&self, index: CheckpointIndex) -> bool {
        self.position(index).is_ok()
    }

    /// Number of checkpoints currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stored indices in ascending order.
    pub fn indices(&self) -> impl DoubleEndedIterator<Item = CheckpointIndex> + '_ {
        self.entries.iter().map(|&(i, _)| i)
    }

    /// `(index, dv)` pairs in ascending index order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (CheckpointIndex, &DependencyVector)> {
        self.entries.iter().map(|(i, s)| (*i, &s.dv))
    }

    /// The most recent stored checkpoint, if any.
    pub fn last(&self) -> Option<CheckpointIndex> {
        self.entries.back().map(|&(i, _)| i)
    }

    /// Maximum number of simultaneously stored checkpoints observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Checkpoints stored over the store's lifetime.
    pub fn total_stored(&self) -> usize {
        self.total_stored
    }

    /// Checkpoints eliminated over the store's lifetime.
    pub fn total_collected(&self) -> usize {
        self.total_collected
    }

    /// Bytes currently occupied by stored checkpoints.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Peak simultaneous byte occupancy.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Bytes written to stable storage over the store's lifetime.
    pub fn total_bytes_stored(&self) -> usize {
        self.total_bytes_stored
    }

    /// Removes every checkpoint with index strictly greater than `ri`
    /// (rollback discards them, Algorithm 3 line 4). Returns them.
    pub fn truncate_after(&mut self, ri: CheckpointIndex) -> Vec<CheckpointIndex> {
        let cut = match self.position(ri) {
            Ok(at) => at + 1,
            Err(at) => at,
        };
        let mut doomed = Vec::with_capacity(self.entries.len() - cut);
        for (index, stored) in self.entries.drain(cut..) {
            self.total_collected += 1;
            self.bytes -= stored.bytes;
            doomed.push(index);
        }
        doomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    fn store_with(indices: &[usize]) -> CheckpointStore {
        let mut s = CheckpointStore::new(ProcessId::new(0));
        for &i in indices {
            s.insert(idx(i), DependencyVector::new(2));
        }
        s
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = store_with(&[0, 1, 2]);
        assert_eq!(s.len(), 3);
        s.remove(idx(1)).unwrap();
        assert!(!s.contains(idx(1)));
        assert_eq!(s.last(), Some(idx(2)));
        assert_eq!(s.total_collected(), 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = store_with(&[0, 1, 2]);
        s.remove(idx(0)).unwrap();
        s.remove(idx(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.peak(), 3);
    }

    #[test]
    #[should_panic(expected = "stored twice")]
    fn duplicate_insert_panics() {
        let mut s = store_with(&[0]);
        s.insert(idx(0), DependencyVector::new(2));
    }

    #[test]
    fn removing_missing_checkpoint_is_an_error() {
        let mut s = store_with(&[0]);
        assert!(matches!(
            s.remove(idx(5)),
            Err(Error::CheckpointNotInStorage { .. })
        ));
    }

    #[test]
    fn byte_accounting_tracks_occupancy() {
        let mut s = CheckpointStore::new(ProcessId::new(0));
        s.insert_with_size(idx(0), DependencyVector::new(2), 100);
        s.insert_with_size(idx(1), DependencyVector::new(2), 50);
        assert_eq!(s.bytes(), 150);
        assert_eq!(s.peak_bytes(), 150);
        s.remove(idx(0)).unwrap();
        assert_eq!(s.bytes(), 50);
        assert_eq!(s.peak_bytes(), 150);
        assert_eq!(s.total_bytes_stored(), 150);
    }

    #[test]
    fn truncate_updates_bytes() {
        let mut s = CheckpointStore::new(ProcessId::new(0));
        for i in 0..4 {
            s.insert_with_size(idx(i), DependencyVector::new(2), 10);
        }
        s.truncate_after(idx(1));
        assert_eq!(s.bytes(), 20);
    }

    #[test]
    fn truncate_after_removes_strict_suffix() {
        let mut s = store_with(&[0, 1, 2, 3, 4]);
        let doomed = s.truncate_after(idx(2));
        assert_eq!(doomed, vec![idx(3), idx(4)]);
        assert_eq!(
            s.indices().collect::<Vec<_>>(),
            vec![idx(0), idx(1), idx(2)]
        );
    }

    #[test]
    fn truncate_after_last_is_noop() {
        let mut s = store_with(&[0, 1]);
        assert!(s.truncate_after(idx(1)).is_empty());
        assert_eq!(s.len(), 2);
    }
    #[test]
    fn incarnation_floor_is_monotone_and_survives_truncation() {
        let mut store = CheckpointStore::new(ProcessId::new(0));
        assert_eq!(store.incarnation_floor(), Incarnation::ZERO);
        store.raise_incarnation_floor(Incarnation::new(3));
        store.raise_incarnation_floor(Incarnation::new(1)); // ignored
        assert_eq!(store.incarnation_floor(), Incarnation::new(3));
        store.insert(CheckpointIndex::new(0), DependencyVector::new(2));
        store.truncate_after(CheckpointIndex::new(0));
        assert_eq!(store.incarnation_floor(), Incarnation::new(3));
    }
}
