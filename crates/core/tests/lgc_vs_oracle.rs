//! Validates RDT-LGC against the exhaustive `rdt-ccp` oracles on randomly
//! generated RD-trackable executions:
//!
//! * **Safety** (Theorem 4): every checkpoint RDT-LGC eliminates is obsolete
//!   under Theorem 1 — checked both per-step and on the final cut
//!   (obsolescence is monotone by Lemma 3).
//! * **Optimality** (Theorem 5): no retained checkpoint is causally
//!   identifiable as obsolete (Theorem 2).
//! * **Invariant** (Theorem 3 / Equation 4): whenever
//!   `s_f^last → c_i^{γ+1} ∧ s_f^last ↛ s_i^γ`, `UC[f]` references `s_i^γ`.
//! * **Space bound** (Section 4.5): at most `n` retained checkpoints per
//!   process, `n + 1` transiently.
//!
//! Executions follow the checkpoint-before-receive discipline, which makes
//! every pattern RDT by construction (forced checkpoints stored before the
//! receive's GC runs, as Section 4.5 requires).

use proptest::prelude::*;
use rdt_base::{CheckpointId, CheckpointIndex, DependencyVector, MessageId, ProcessId};
use rdt_ccp::{Ccp, CcpBuilder, GeneralCheckpoint};
use rdt_core::{CheckpointStore, GarbageCollector, RdtLgc};

/// One process's online state.
struct Proc {
    gc: RdtLgc,
    store: CheckpointStore,
    dv: DependencyVector,
}

/// The whole system plus its offline mirror.
struct System {
    procs: Vec<Proc>,
    mirror: CcpBuilder,
    in_flight: Vec<(MessageId, ProcessId, DependencyVector)>,
    eliminated: Vec<CheckpointId>,
}

impl System {
    fn new(n: usize) -> Self {
        let mut sys = Self {
            procs: (0..n)
                .map(|i| Proc {
                    gc: RdtLgc::new(ProcessId::new(i), n),
                    store: CheckpointStore::new(ProcessId::new(i)),
                    dv: DependencyVector::new(n),
                })
                .collect(),
            mirror: CcpBuilder::new(n),
            in_flight: Vec::new(),
            eliminated: Vec::new(),
        };
        for i in 0..n {
            sys.checkpoint_online_only(ProcessId::new(i)); // s_i^0, mirrored by CcpBuilder::new
        }
        sys
    }

    /// Online checkpoint without touching the mirror (the mirror already
    /// contains the initial checkpoints).
    fn checkpoint_online_only(&mut self, p: ProcessId) {
        let proc_ = &mut self.procs[p.index()];
        let index = proc_.dv.entry(p).as_checkpoint();
        proc_.store.insert(index, proc_.dv.clone());
        let gone = proc_
            .gc
            .after_checkpoint(&mut proc_.store, index, &proc_.dv);
        proc_.dv.begin_next_interval(p);
        self.eliminated
            .extend(gone.into_iter().map(|g| CheckpointId::new(p, g)));
    }

    fn checkpoint(&mut self, p: ProcessId) {
        self.mirror.checkpoint(p);
        self.checkpoint_online_only(p);
    }

    fn send(&mut self, from: ProcessId, to: ProcessId) {
        let id = self.mirror.send(from, to);
        self.in_flight
            .push((id, to, self.procs[from.index()].dv.clone()));
    }

    /// Checkpoint-before-receive delivery.
    fn deliver(&mut self, k: usize) {
        let (id, dst, sender_dv) = self.in_flight.remove(k % self.in_flight.len());
        // Forced checkpoint, stored before the receive's GC (Section 4.5).
        self.checkpoint(dst);
        self.mirror.deliver(id);
        let proc_ = &mut self.procs[dst.index()];
        let updated = proc_.dv.merge_from(&sender_dv);
        let gone = proc_
            .gc
            .after_receive(&mut proc_.store, &updated, &proc_.dv);
        self.eliminated
            .extend(gone.into_iter().map(|g| CheckpointId::new(dst, g)));
    }

    fn ccp(&self) -> Ccp {
        self.mirror.clone().build()
    }
}

#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..5, 0usize..64, 0usize..64).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..max,
    )
}

fn run(n: usize, ops: &[Op]) -> System {
    let mut sys = System::new(n);
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => sys.checkpoint(p),
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                sys.send(p, q);
            }
            _ => {
                if !sys.in_flight.is_empty() {
                    sys.deliver(op.b);
                }
            }
        }
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4 — safety: everything eliminated is obsolete on the final
    /// cut (obsolescence is monotone, Lemma 3 / Claim 1).
    #[test]
    fn safety_only_obsolete_eliminated(n in 2usize..5, ops in ops(60)) {
        let sys = run(n, &ops);
        let ccp = sys.ccp();
        let obsolete = ccp.obsolete_set();
        for c in &sys.eliminated {
            prop_assert!(obsolete.contains(c), "{c} eliminated but not obsolete");
        }
    }

    /// Theorem 5 — optimality: no retained checkpoint is causally
    /// identifiable as obsolete.
    #[test]
    fn optimality_no_identifiable_garbage_retained(n in 2usize..5, ops in ops(60)) {
        let sys = run(n, &ops);
        let ccp = sys.ccp();
        let identifiable = ccp.causally_identifiable_obsolete_set();
        for proc_ in &sys.procs {
            for idx in proc_.store.indices() {
                let c = CheckpointId::new(proc_.store.owner(), idx);
                prop_assert!(
                    !identifiable.contains(&c),
                    "{c} retained although causally identifiable as obsolete"
                );
            }
        }
    }

    /// Online store contents equal (all stable) − (eliminated): RDT-LGC
    /// and the mirror never diverge.
    #[test]
    fn store_matches_mirror(n in 2usize..5, ops in ops(60)) {
        let sys = run(n, &ops);
        let ccp = sys.ccp();
        for proc_ in &sys.procs {
            let p = proc_.store.owner();
            let expect: Vec<CheckpointIndex> = (0..=ccp.last_stable(p).value())
                .map(CheckpointIndex::new)
                .filter(|&i| !sys.eliminated.contains(&CheckpointId::new(p, i)))
                .collect();
            prop_assert_eq!(proc_.store.indices().collect::<Vec<_>>(), expect);
        }
    }

    /// Theorem 3 — the Equation-4 invariant holds on the final cut.
    #[test]
    fn equation_4_invariant(n in 2usize..5, ops in ops(60)) {
        let sys = run(n, &ops);
        let ccp = sys.ccp();
        for proc_ in &sys.procs {
            let i = proc_.store.owner();
            let uc = proc_.gc.uc_view();
            for f in ccp.processes() {
                // Find the γ (if any) with s_f^last → c_i^{γ+1} ∧ ↛ s_i^γ.
                for gamma in 0..=ccp.last_stable(i).value() {
                    let g = GeneralCheckpoint::new(i, CheckpointIndex::new(gamma));
                    let succ = GeneralCheckpoint::new(i, CheckpointIndex::new(gamma + 1));
                    if ccp.last_stable_precedes(f, succ) && !ccp.last_stable_precedes(f, g) {
                        prop_assert_eq!(
                            uc[f.index()],
                            Some(CheckpointIndex::new(gamma)),
                            "UC[{}] of {} must pin γ={}", f, i, gamma
                        );
                    }
                }
            }
        }
    }

    /// Section 4.5 — space bounds: ≤ n retained, ≤ n+1 transiently.
    #[test]
    fn space_bounds(n in 2usize..6, ops in ops(80)) {
        let sys = run(n, &ops);
        for proc_ in &sys.procs {
            prop_assert!(proc_.store.len() <= n);
            prop_assert!(proc_.store.peak() <= n + 1);
            prop_assert!(proc_.gc.pinned() <= n);
        }
    }

    /// The retained set always includes the last stable checkpoint.
    #[test]
    fn last_stable_always_retained(n in 2usize..5, ops in ops(60)) {
        let sys = run(n, &ops);
        let ccp = sys.ccp();
        for proc_ in &sys.procs {
            let p = proc_.store.owner();
            prop_assert!(proc_.store.contains(ccp.last_stable(p)));
        }
    }
}

/// Deterministic regression: the exact knowledge-gap scenario from the
/// paper's Figure 4 discussion — an obsolete checkpoint retained because the
/// owner never learns of the pinner's later checkpoints.
#[test]
fn knowledge_gap_checkpoint_stays_retained() {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut sys = System::new(2);
    sys.checkpoint(p1); // s_1^1
    sys.send(p1, p0);
    sys.deliver(0); // p0 forced-checkpoints (s_0^1), learns s_1^1
    sys.checkpoint(p0); // s_0^2
    sys.checkpoint(p1); // s_1^2: p0 never hears of it

    let ccp = sys.ccp();
    // s_0^1 is obsolete by Theorem 1 (s_1^last = s_1^2 ↛ anything of p0)…
    let s01 = CheckpointId::new(p0, CheckpointIndex::new(1));
    assert!(ccp.is_obsolete(s01));
    // …but not causally identifiable, so RDT-LGC retains it. Optimal.
    assert!(!ccp.is_causally_identifiable_obsolete(s01));
    assert!(sys.procs[0].store.contains(CheckpointIndex::new(1)));
}
