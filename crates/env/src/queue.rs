//! An integer-tick bucket (calendar) queue for the discrete-event engine.
//!
//! The simulator schedules events at integer ticks that are never in the
//! past, almost always within a short horizon of the current time (message
//! delays, op spacing, control periods). A ring of per-tick buckets makes
//! `push` and `pop` O(1) for that common case — no comparisons, no heap
//! percolation — while a `BTreeMap` overflow absorbs far-future events
//! (they migrate into the ring as time approaches). Within a tick, events
//! pop in push (sequence) order, so the total order is exactly the
//! `(at, seq)` order the previous `BinaryHeap<Reverse<…>>` implementation
//! produced; the in-file `equivalence` proptest module proves it against a
//! heap reference, operation by operation.
//!
//! Crash sessions use [`retain`](BucketQueue::retain) to drop in-transit
//! deliveries **in place** — the old engine rebuilt the whole heap
//! (`mem::take` + re-push of every surviving event) on every crash.
//!
//! Exhausted buckets are recycled through a pool, so a long simulation
//! reuses a handful of allocations regardless of event count.

use std::collections::{BTreeMap, VecDeque};

/// How many ticks ahead of the ring base events stay in the ring. Chosen
/// to cover default op spacing (10 ticks), maximum channel delays (tens of
/// ticks) and control periods with room to spare, while keeping the idle
/// ring walk trivial.
const WINDOW: u64 = 1024;

/// One per-tick bucket: events in push (= `seq`) order.
type Bucket<T> = VecDeque<(u64, T)>;

/// A priority queue over `(at, seq)` keys, specialized for monotone
/// discrete-event scheduling.
///
/// Invariants the caller must uphold (the simulator does by construction):
///
/// * `seq` strictly increases across pushes;
/// * `at` is never below the tick of the most recently popped event.
///
/// Both are `debug_assert`ed.
#[derive(Debug)]
pub struct BucketQueue<T> {
    /// Tick represented by `ring[0]`.
    base: u64,
    /// Per-tick buckets for `base .. base + ring.len()`, each in `seq`
    /// order by construction (pushes arrive with increasing `seq`).
    ring: VecDeque<Bucket<T>>,
    /// Events at ticks `>= base + WINDOW`, keyed by tick.
    overflow: BTreeMap<u64, Bucket<T>>,
    /// Total queued events.
    len: usize,
    /// Recycled bucket storage.
    pool: Vec<Bucket<T>>,
    /// Highest `seq` pushed so far (monotonicity check).
    last_seq: u64,
}

impl<T> Default for BucketQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BucketQueue<T> {
    /// An empty queue starting at tick 0.
    pub fn new() -> Self {
        Self {
            base: 0,
            ring: VecDeque::new(),
            overflow: BTreeMap::new(),
            len: 0,
            pool: Vec::new(),
            last_seq: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn fresh_bucket(pool: &mut Vec<Bucket<T>>) -> Bucket<T> {
        pool.pop().unwrap_or_default()
    }

    /// Ensures `ring[offset]` exists, growing the ring from the pool.
    fn grow_ring_to(&mut self, offset: usize) {
        if self.ring.len() <= offset {
            let pool = &mut self.pool;
            self.ring
                .resize_with(offset + 1, || Self::fresh_bucket(pool));
        }
    }

    /// Enqueues `item` at tick `at` with sequence number `seq`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(
            self.last_seq == 0 || seq > self.last_seq,
            "sequence numbers must increase"
        );
        debug_assert!(at >= self.base, "cannot schedule into the past");
        self.last_seq = seq;
        let at = at.max(self.base);
        if at >= self.base + WINDOW {
            self.overflow.entry(at).or_default().push_back((seq, item));
        } else {
            let offset = (at - self.base) as usize;
            self.grow_ring_to(offset);
            self.ring[offset].push_back((seq, item));
        }
        self.len += 1;
    }

    /// Dequeues the earliest event as `(at, seq, item)`, in `(at, seq)`
    /// order.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(front) = self.ring.front_mut() {
                if let Some((seq, item)) = front.pop_front() {
                    self.len -= 1;
                    return Some((self.base, seq, item));
                }
                // Bucket exhausted: recycle it and advance one tick.
                let spent = self.ring.pop_front().expect("front exists");
                self.pool.push(spent);
                self.base += 1;
                self.migrate_overflow();
                continue;
            }
            // Ring empty: jump straight to the first overflow tick.
            let (&at, _) = self
                .overflow
                .first_key_value()
                .expect("len > 0 with an empty ring means overflow has events");
            self.base = at;
            self.migrate_overflow();
        }
    }

    /// Moves overflow buckets whose tick entered the ring window into the
    /// ring. Buckets move wholesale — they are already `seq`-sorted, and
    /// ring slots for overflow ticks are empty by construction (events for
    /// those ticks kept landing in the overflow until now).
    fn migrate_overflow(&mut self) {
        while let Some((&at, _)) = self.overflow.first_key_value() {
            if at >= self.base + WINDOW {
                break;
            }
            let bucket = self.overflow.remove(&at).expect("first key exists");
            let offset = (at - self.base) as usize;
            self.grow_ring_to(offset);
            debug_assert!(
                self.ring[offset].is_empty(),
                "ring and overflow must stay disjoint"
            );
            let empty = std::mem::replace(&mut self.ring[offset], bucket);
            self.pool.push(empty);
        }
    }

    /// Keeps only the events for which `keep` returns `true`, preserving
    /// `(at, seq)` order. Removed events are handed to `drop_fn` in
    /// `(at, seq)` order together with their tick. Buckets are filtered
    /// through pooled scratch storage — one element move per event, no
    /// queue rebuild. This is the crash-session drain: the old engine
    /// `mem::take`-and-re-pushed its entire heap here.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool, mut drop_fn: impl FnMut(u64, T)) {
        let len = &mut self.len;
        let pool = &mut self.pool;
        let mut filter = |bucket: &mut Bucket<T>, at: u64| {
            if bucket.is_empty() {
                return;
            }
            let mut old = std::mem::replace(bucket, Self::fresh_bucket(pool));
            for (seq, item) in old.drain(..) {
                if keep(&item) {
                    bucket.push_back((seq, item));
                } else {
                    *len -= 1;
                    drop_fn(at, item);
                }
            }
            // The drained storage goes back to the pool: repeated crash
            // sessions reuse the same buffers instead of churning them.
            pool.push(old);
        };
        for (offset, bucket) in self.ring.iter_mut().enumerate() {
            filter(bucket, self.base + offset as u64);
        }
        for (&at, bucket) in self.overflow.iter_mut() {
            filter(bucket, at);
        }
        // Ticks whose overflow bucket emptied out are dropped (their
        // storage is recycled when `filter` replaced them — the emptied
        // originals were consumed above).
        let emptied: Vec<u64> = self
            .overflow
            .iter()
            .filter(|(_, b)| b.is_empty())
            .map(|(&at, _)| at)
            .collect();
        for at in emptied {
            if let Some(bucket) = self.overflow.remove(&at) {
                self.pool.push(bucket);
            }
        }
    }
}

#[cfg(test)]
mod equivalence {
    //! The bucket queue must pop events in exactly the `(at, seq)` order of
    //! the `BinaryHeap<Reverse<…>>` it replaced, under arbitrary interleaved
    //! pushes, pops and crash-style retains.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use proptest::prelude::*;

    use super::BucketQueue;

    /// One scripted step: numbers map onto the currently legal moves.
    #[derive(Debug, Clone, Copy)]
    struct Op {
        kind: u8,
        delay: u64,
        payload: u8,
    }

    fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            (0u8..8, 0u64..2500, 0u8..4).prop_map(|(kind, delay, payload)| Op {
                kind,
                delay,
                payload,
            }),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pops_match_binary_heap_reference(script in ops(120)) {
            let mut bucket: BucketQueue<u8> = BucketQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u8)>> = BinaryHeap::new();
            let mut time = 0u64;
            let mut seq = 1u64;
            for op in script {
                match op.kind {
                    // Push (weighted: most ops are pushes, spanning the
                    // ring window and the overflow).
                    0..=4 => {
                        let at = time + op.delay;
                        bucket.push(at, seq, op.payload);
                        heap.push(Reverse((at, seq, op.payload)));
                        seq += 1;
                    }
                    // Pop from both; results must agree exactly.
                    5..=6 => {
                        let expected = heap.pop().map(|Reverse(e)| e);
                        let got = bucket.pop();
                        prop_assert_eq!(got, expected);
                        if let Some((at, _, _)) = got {
                            time = time.max(at);
                        }
                    }
                    // Crash-style retain: drop one payload class from both.
                    _ => {
                        let doomed = op.payload;
                        let mut dropped = Vec::new();
                        bucket.retain(|&p| p != doomed, |at, p| dropped.push((at, p)));
                        let mut expected_dropped = Vec::new();
                        let survivors: Vec<Reverse<(u64, u64, u8)>> = heap
                            .drain()
                            .filter(|Reverse((at, s, p))| {
                                if *p == doomed {
                                    expected_dropped.push((*at, *s, *p));
                                    false
                                } else {
                                    true
                                }
                            })
                            .collect();
                        heap.extend(survivors);
                        // The bucket queue reports drops in (at, seq) order.
                        expected_dropped.sort_unstable();
                        let expected_dropped: Vec<(u64, u8)> = expected_dropped
                            .into_iter()
                            .map(|(at, _, p)| (at, p))
                            .collect();
                        prop_assert_eq!(dropped, expected_dropped);
                    }
                }
            }
            // Drain the tails; they must agree to the last event.
            loop {
                let expected = heap.pop().map(|Reverse(e)| e);
                let got = bucket.pop();
                prop_assert_eq!(got, expected);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut BucketQueue<T>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_at_seq_order() {
        let mut q = BucketQueue::new();
        q.push(5, 1, "a");
        q.push(3, 2, "b");
        q.push(5, 3, "c");
        q.push(3, 4, "d");
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(3, 2), (3, 4), (5, 1), (5, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: BucketQueue<u8> = BucketQueue::new();
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn push_at_current_tick_while_draining() {
        let mut q = BucketQueue::new();
        q.push(10, 1, ());
        let (at, _, ()) = q.pop().expect("queued");
        assert_eq!(at, 10);
        // Delay-zero push onto the tick being processed pops next.
        q.push(10, 2, ());
        q.push(11, 3, ());
        assert_eq!(drain(&mut q), vec![(10, 2), (11, 3)]);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = BucketQueue::new();
        q.push(0, 1, "now");
        q.push(WINDOW * 3, 2, "later");
        q.push(WINDOW * 3 + 1, 3, "latest");
        assert_eq!(
            drain(&mut q),
            vec![(0, 1), (WINDOW * 3, 2), (WINDOW * 3 + 1, 3)]
        );
    }

    #[test]
    fn overflow_tick_jump_skips_idle_ticks() {
        let mut q = BucketQueue::new();
        q.push(WINDOW * 10, 1, ());
        // One pop must not walk WINDOW*10 ring slots; it jumps.
        assert_eq!(
            q.pop().map(|(at, seq, _)| (at, seq)),
            Some((WINDOW * 10, 1))
        );
    }

    #[test]
    fn retain_drops_in_order_and_preserves_the_rest() {
        let mut q = BucketQueue::new();
        q.push(1, 1, 10);
        q.push(1, 2, 11);
        q.push(2, 3, 10);
        q.push(WINDOW + 5, 4, 11);
        q.push(WINDOW + 5, 5, 10);
        let mut dropped = Vec::new();
        q.retain(|&v| v == 10, |at, v| dropped.push((at, v)));
        assert_eq!(dropped, vec![(1, 11), (WINDOW + 5, 11)]);
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q), vec![(1, 1), (2, 3), (WINDOW + 5, 5)]);
    }

    #[test]
    fn retain_on_partially_consumed_tick() {
        let mut q = BucketQueue::new();
        q.push(0, 1, 1);
        q.push(0, 2, 2);
        q.push(0, 3, 3);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(1));
        let mut dropped = Vec::new();
        q.retain(|&v| v != 2, |_, v| dropped.push(v));
        assert_eq!(dropped, vec![2]);
        assert_eq!(drain(&mut q), vec![(0, 3)]);
    }

    #[test]
    fn buckets_are_recycled() {
        let mut q = BucketQueue::new();
        for round in 0..100u64 {
            q.push(round * 3, round * 2 + 1, ());
            q.push(round * 3 + 1, round * 2 + 2, ());
            let _ = q.pop();
            let _ = q.pop();
        }
        assert!(q.is_empty());
        // The pool keeps bucket allocations bounded regardless of rounds.
        assert!(q.pool.len() <= 8, "pool grew to {}", q.pool.len());
    }
}
