//! An integer-tick bucket (calendar) queue for the discrete-event engine.
//!
//! The simulator schedules events at integer ticks that are never in the
//! past, almost always within a short horizon of the current time (message
//! delays, op spacing, control periods). A ring of per-tick buckets makes
//! `push` and `pop` O(1) for that common case — no comparisons, no heap
//! percolation — while a `BTreeMap` overflow absorbs far-future events
//! (they migrate into the ring as time approaches). Within a tick, events
//! pop in push (sequence) order, so the total order is exactly the
//! `(at, seq)` order the previous `BinaryHeap<Reverse<…>>` implementation
//! produced; the in-file `equivalence` proptest module proves it against a
//! heap reference, operation by operation.
//!
//! Crash sessions use [`retain`](BucketQueue::retain) to drop in-transit
//! deliveries **in place** — the old engine rebuilt the whole heap
//! (`mem::take` + re-push of every surviving event) on every crash.
//!
//! Exhausted buckets are recycled through a pool, so a long simulation
//! reuses a handful of allocations regardless of event count.

use std::collections::{BTreeMap, VecDeque};

/// How many ticks ahead of the ring base events stay in the ring. Chosen
/// to cover default op spacing (10 ticks), maximum channel delays (tens of
/// ticks) and control periods with room to spare, while keeping the idle
/// ring walk trivial.
const WINDOW: u64 = 1024;

/// One per-tick bucket: events in push (= `seq`) order.
type Bucket<T> = VecDeque<(u64, T)>;

/// A priority queue over `(at, seq)` keys, specialized for monotone
/// discrete-event scheduling.
///
/// Invariants the caller must uphold (the simulator does by construction):
///
/// * `seq` strictly increases across pushes;
/// * `at` is never below the tick of the most recently popped event.
///
/// Both are `debug_assert`ed.
#[derive(Debug)]
pub struct BucketQueue<T> {
    /// Tick represented by `ring[0]`.
    base: u64,
    /// Per-tick buckets for `base .. base + ring.len()`, each in `seq`
    /// order by construction (pushes arrive with increasing `seq`).
    ring: VecDeque<Bucket<T>>,
    /// Events at ticks `>= base + WINDOW`, keyed by tick.
    overflow: BTreeMap<u64, Bucket<T>>,
    /// Total queued events.
    len: usize,
    /// Recycled bucket storage.
    pool: Vec<Bucket<T>>,
    /// Highest `seq` pushed so far (monotonicity check).
    last_seq: u64,
}

impl<T> Default for BucketQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BucketQueue<T> {
    /// An empty queue starting at tick 0.
    pub fn new() -> Self {
        Self {
            base: 0,
            ring: VecDeque::new(),
            overflow: BTreeMap::new(),
            len: 0,
            pool: Vec::new(),
            last_seq: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn fresh_bucket(pool: &mut Vec<Bucket<T>>) -> Bucket<T> {
        pool.pop().unwrap_or_default()
    }

    /// Ensures `ring[offset]` exists, growing the ring from the pool.
    fn grow_ring_to(&mut self, offset: usize) {
        if self.ring.len() <= offset {
            let pool = &mut self.pool;
            self.ring
                .resize_with(offset + 1, || Self::fresh_bucket(pool));
        }
    }

    /// Enqueues `item` at tick `at` with sequence number `seq`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(
            self.last_seq == 0 || seq > self.last_seq,
            "sequence numbers must increase"
        );
        debug_assert!(at >= self.base, "cannot schedule into the past");
        self.last_seq = seq;
        let at = at.max(self.base);
        if at >= self.base + WINDOW {
            self.overflow.entry(at).or_default().push_back((seq, item));
        } else {
            let offset = (at - self.base) as usize;
            self.grow_ring_to(offset);
            self.ring[offset].push_back((seq, item));
        }
        self.len += 1;
    }

    /// Enqueues `item` at tick `at` with sequence number `seq`, keeping the
    /// bucket sorted by `seq` — the out-of-order flavour of
    /// [`push`](Self::push) for shard-local queues, whose events arrive in
    /// per-shard (not global) order: an inserted cross-shard delivery may
    /// carry a *smaller* global sequence number than a later local event
    /// already queued at the same tick. Position is found by binary search,
    /// and the global-monotonicity invariant is deliberately not asserted.
    pub fn insert(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.base, "cannot schedule into the past");
        let at = at.max(self.base);
        let bucket = if at >= self.base + WINDOW {
            self.overflow.entry(at).or_default()
        } else {
            let offset = (at - self.base) as usize;
            self.grow_ring_to(offset);
            &mut self.ring[offset]
        };
        let pos = bucket.partition_point(|&(s, _)| s < seq);
        bucket.insert(pos, (seq, item));
        self.len += 1;
    }

    /// Dequeues the earliest event whose `(at, seq)` key is strictly below
    /// `bound`, or `None` — without consuming anything at or past the
    /// bound, and without advancing the internal base past `bound.0`, so
    /// later [`insert`](Self::insert)s at ticks `>= bound.0` (the earliest
    /// a conservative-lookahead window barrier can deliver) stay legal.
    pub fn pop_before(&mut self, bound: (u64, u64)) -> Option<(u64, u64, T)> {
        loop {
            if self.base >= bound.0 {
                // Only same-tick events with a smaller seq still qualify.
                if self.base == bound.0 {
                    if let Some(front) = self.ring.front_mut() {
                        if let Some(&(seq, _)) = front.front() {
                            if seq < bound.1 {
                                let (seq, item) = front.pop_front().expect("peeked");
                                self.len -= 1;
                                return Some((self.base, seq, item));
                            }
                        }
                    }
                }
                return None;
            }
            if let Some(front) = self.ring.front_mut() {
                if let Some((seq, item)) = front.pop_front() {
                    self.len -= 1;
                    return Some((self.base, seq, item));
                }
                let spent = self.ring.pop_front().expect("front exists");
                self.pool.push(spent);
                self.base += 1;
                self.migrate_overflow();
                continue;
            }
            // Ring empty: jump to the first overflow tick if it is at or
            // inside the bound (a bucket *at* the bound may still hold
            // same-tick events below `bound.1`), else park the base there.
            match self.overflow.first_key_value() {
                Some((&at, _)) if at <= bound.0 => {
                    self.base = at;
                    self.migrate_overflow();
                }
                _ => {
                    self.base = bound.0;
                    return None;
                }
            }
        }
    }

    /// Dequeues the earliest event as `(at, seq, item)`, in `(at, seq)`
    /// order.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(front) = self.ring.front_mut() {
                if let Some((seq, item)) = front.pop_front() {
                    self.len -= 1;
                    return Some((self.base, seq, item));
                }
                // Bucket exhausted: recycle it and advance one tick.
                let spent = self.ring.pop_front().expect("front exists");
                self.pool.push(spent);
                self.base += 1;
                self.migrate_overflow();
                continue;
            }
            // Ring empty: jump straight to the first overflow tick.
            let (&at, _) = self
                .overflow
                .first_key_value()
                .expect("len > 0 with an empty ring means overflow has events");
            self.base = at;
            self.migrate_overflow();
        }
    }

    /// Moves overflow buckets whose tick entered the ring window into the
    /// ring. Buckets move wholesale — they are already `seq`-sorted, and
    /// ring slots for overflow ticks are empty by construction (events for
    /// those ticks kept landing in the overflow until now).
    fn migrate_overflow(&mut self) {
        while let Some((&at, _)) = self.overflow.first_key_value() {
            if at >= self.base + WINDOW {
                break;
            }
            let bucket = self.overflow.remove(&at).expect("first key exists");
            let offset = (at - self.base) as usize;
            self.grow_ring_to(offset);
            debug_assert!(
                self.ring[offset].is_empty(),
                "ring and overflow must stay disjoint"
            );
            let empty = std::mem::replace(&mut self.ring[offset], bucket);
            self.pool.push(empty);
        }
    }

    /// Keeps only the events for which `keep` returns `true`, preserving
    /// `(at, seq)` order. Removed events are handed to `drop_fn` in
    /// `(at, seq)` order together with their tick. Buckets are filtered
    /// through pooled scratch storage — one element move per event, no
    /// queue rebuild. This is the crash-session drain: the old engine
    /// `mem::take`-and-re-pushed its entire heap here.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool, mut drop_fn: impl FnMut(u64, T)) {
        let len = &mut self.len;
        let pool = &mut self.pool;
        let mut filter = |bucket: &mut Bucket<T>, at: u64| {
            if bucket.is_empty() {
                return;
            }
            let mut old = std::mem::replace(bucket, Self::fresh_bucket(pool));
            for (seq, item) in old.drain(..) {
                if keep(&item) {
                    bucket.push_back((seq, item));
                } else {
                    *len -= 1;
                    drop_fn(at, item);
                }
            }
            // The drained storage goes back to the pool: repeated crash
            // sessions reuse the same buffers instead of churning them.
            pool.push(old);
        };
        for (offset, bucket) in self.ring.iter_mut().enumerate() {
            filter(bucket, self.base + offset as u64);
        }
        for (&at, bucket) in self.overflow.iter_mut() {
            filter(bucket, at);
        }
        // Ticks whose overflow bucket emptied out are dropped (their
        // storage is recycled when `filter` replaced them — the emptied
        // originals were consumed above).
        let emptied: Vec<u64> = self
            .overflow
            .iter()
            .filter(|(_, b)| b.is_empty())
            .map(|(&at, _)| at)
            .collect();
        for at in emptied {
            if let Some(bucket) = self.overflow.remove(&at) {
                self.pool.push(bucket);
            }
        }
    }
}

#[cfg(test)]
mod equivalence {
    //! The bucket queue must pop events in exactly the `(at, seq)` order of
    //! the `BinaryHeap<Reverse<…>>` it replaced, under arbitrary interleaved
    //! pushes, pops and crash-style retains.

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use proptest::prelude::*;

    use super::BucketQueue;

    /// One scripted step: numbers map onto the currently legal moves.
    #[derive(Debug, Clone, Copy)]
    struct Op {
        kind: u8,
        delay: u64,
        payload: u8,
    }

    fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            (0u8..8, 0u64..2500, 0u8..4).prop_map(|(kind, delay, payload)| Op {
                kind,
                delay,
                payload,
            }),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pops_match_binary_heap_reference(script in ops(120)) {
            let mut bucket: BucketQueue<u8> = BucketQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u8)>> = BinaryHeap::new();
            let mut time = 0u64;
            let mut seq = 1u64;
            for op in script {
                match op.kind {
                    // Push (weighted: most ops are pushes, spanning the
                    // ring window and the overflow).
                    0..=4 => {
                        let at = time + op.delay;
                        bucket.push(at, seq, op.payload);
                        heap.push(Reverse((at, seq, op.payload)));
                        seq += 1;
                    }
                    // Pop from both; results must agree exactly.
                    5..=6 => {
                        let expected = heap.pop().map(|Reverse(e)| e);
                        let got = bucket.pop();
                        prop_assert_eq!(got, expected);
                        if let Some((at, _, _)) = got {
                            time = time.max(at);
                        }
                    }
                    // Crash-style retain: drop one payload class from both.
                    _ => {
                        let doomed = op.payload;
                        let mut dropped = Vec::new();
                        bucket.retain(|&p| p != doomed, |at, p| dropped.push((at, p)));
                        let mut expected_dropped = Vec::new();
                        let survivors: Vec<Reverse<(u64, u64, u8)>> = heap
                            .drain()
                            .filter(|Reverse((at, s, p))| {
                                if *p == doomed {
                                    expected_dropped.push((*at, *s, *p));
                                    false
                                } else {
                                    true
                                }
                            })
                            .collect();
                        heap.extend(survivors);
                        // The bucket queue reports drops in (at, seq) order.
                        expected_dropped.sort_unstable();
                        let expected_dropped: Vec<(u64, u8)> = expected_dropped
                            .into_iter()
                            .map(|(at, _, p)| (at, p))
                            .collect();
                        prop_assert_eq!(dropped, expected_dropped);
                    }
                }
            }
            // Drain the tails; they must agree to the last event.
            loop {
                let expected = heap.pop().map(|Reverse(e)| e);
                let got = bucket.pop();
                prop_assert_eq!(got, expected);
                if got.is_none() {
                    break;
                }
            }
        }

        /// The shard-queue pair `insert` + `pop_before` drains, window by
        /// window, exactly the events below each bound in `(at, seq)`
        /// order — matching a sorted reference under arbitrary
        /// (non-monotonic-seq) insertions between windows.
        #[test]
        fn windowed_drain_matches_sorted_reference(
            windows in prop::collection::vec(
                (
                    prop::collection::vec((0u64..2500, 0u64..u64::MAX), 0..20),
                    1u64..2000,
                    0u64..u64::MAX,
                ),
                1..12,
            ),
        ) {
            let mut queue: BucketQueue<u64> = BucketQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut bound = (0u64, 0u64);
            let mut unique = 0u64;
            for (inserts, bound_delay, bound_seq) in windows {
                for (delay, seq_salt) in inserts {
                    let at = bound.0 + delay;
                    // Mix a counter in to keep seqs unique while leaving
                    // their relative order arbitrary.
                    let seq = (seq_salt / 2) ^ unique;
                    unique += 1;
                    if (at, seq) < bound {
                        continue; // a barrier never delivers into the past
                    }
                    queue.insert(at, seq, seq);
                    heap.push(Reverse((at, seq, seq)));
                }
                bound = (bound.0 + bound_delay, bound_seq);
                loop {
                    let expected = match heap.peek() {
                        Some(&Reverse((at, seq, _))) if (at, seq) < bound => {
                            heap.pop().map(|Reverse(e)| e)
                        }
                        _ => None,
                    };
                    let got = queue.pop_before(bound);
                    prop_assert_eq!(got, expected);
                    if got.is_none() {
                        break;
                    }
                }
            }
            // Final drain: everything left pops in order.
            loop {
                let expected = heap.pop().map(|Reverse(e)| e);
                let got = queue.pop_before((u64::MAX, u64::MAX));
                prop_assert_eq!(got, expected);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut BucketQueue<T>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_at_seq_order() {
        let mut q = BucketQueue::new();
        q.push(5, 1, "a");
        q.push(3, 2, "b");
        q.push(5, 3, "c");
        q.push(3, 4, "d");
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(3, 2), (3, 4), (5, 1), (5, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: BucketQueue<u8> = BucketQueue::new();
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn push_at_current_tick_while_draining() {
        let mut q = BucketQueue::new();
        q.push(10, 1, ());
        let (at, _, ()) = q.pop().expect("queued");
        assert_eq!(at, 10);
        // Delay-zero push onto the tick being processed pops next.
        q.push(10, 2, ());
        q.push(11, 3, ());
        assert_eq!(drain(&mut q), vec![(10, 2), (11, 3)]);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = BucketQueue::new();
        q.push(0, 1, "now");
        q.push(WINDOW * 3, 2, "later");
        q.push(WINDOW * 3 + 1, 3, "latest");
        assert_eq!(
            drain(&mut q),
            vec![(0, 1), (WINDOW * 3, 2), (WINDOW * 3 + 1, 3)]
        );
    }

    #[test]
    fn overflow_tick_jump_skips_idle_ticks() {
        let mut q = BucketQueue::new();
        q.push(WINDOW * 10, 1, ());
        // One pop must not walk WINDOW*10 ring slots; it jumps.
        assert_eq!(
            q.pop().map(|(at, seq, _)| (at, seq)),
            Some((WINDOW * 10, 1))
        );
    }

    #[test]
    fn retain_drops_in_order_and_preserves_the_rest() {
        let mut q = BucketQueue::new();
        q.push(1, 1, 10);
        q.push(1, 2, 11);
        q.push(2, 3, 10);
        q.push(WINDOW + 5, 4, 11);
        q.push(WINDOW + 5, 5, 10);
        let mut dropped = Vec::new();
        q.retain(|&v| v == 10, |at, v| dropped.push((at, v)));
        assert_eq!(dropped, vec![(1, 11), (WINDOW + 5, 11)]);
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q), vec![(1, 1), (2, 3), (WINDOW + 5, 5)]);
    }

    #[test]
    fn retain_on_partially_consumed_tick() {
        let mut q = BucketQueue::new();
        q.push(0, 1, 1);
        q.push(0, 2, 2);
        q.push(0, 3, 3);
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(1));
        let mut dropped = Vec::new();
        q.retain(|&v| v != 2, |_, v| dropped.push(v));
        assert_eq!(dropped, vec![2]);
        assert_eq!(drain(&mut q), vec![(0, 3)]);
    }

    #[test]
    fn insert_orders_within_a_tick_by_seq() {
        let mut q = BucketQueue::new();
        q.insert(4, 30, "c");
        q.insert(4, 10, "a");
        q.insert(4, 20, "b");
        q.insert(2, 99, "z");
        assert_eq!(drain(&mut q), vec![(2, 99), (4, 10), (4, 20), (4, 30)]);
    }

    #[test]
    fn pop_before_stops_at_the_bound() {
        let mut q = BucketQueue::new();
        q.insert(1, 5, ());
        q.insert(3, 2, ());
        q.insert(3, 9, ());
        q.insert(4, 1, ());
        // Bound (3, 7): pops (1,5) and (3,2); (3,9) and (4,1) stay.
        assert_eq!(q.pop_before((3, 7)).map(|(a, s, _)| (a, s)), Some((1, 5)));
        assert_eq!(q.pop_before((3, 7)).map(|(a, s, _)| (a, s)), Some((3, 2)));
        assert_eq!(q.pop_before((3, 7)), None);
        assert_eq!(q.len(), 2);
        // A cross-shard delivery landing exactly at the bound is legal.
        q.insert(3, 7, ());
        assert_eq!(drain(&mut q), vec![(3, 7), (3, 9), (4, 1)]);
    }

    #[test]
    fn pop_before_reaches_overflow_events_at_the_bound_tick() {
        let mut q = BucketQueue::new();
        let far = WINDOW * 2; // lives in the overflow, ring empty
        q.insert(far, 3, ());
        q.insert(far, 9, ());
        assert_eq!(
            q.pop_before((far, 9)).map(|(a, s, _)| (a, s)),
            Some((far, 3))
        );
        assert_eq!(q.pop_before((far, 9)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_parks_the_base_for_later_inserts() {
        let mut q = BucketQueue::new();
        q.insert(2, 1, ());
        assert_eq!(q.pop_before((10, 0)).map(|(a, s, _)| (a, s)), Some((2, 1)));
        assert_eq!(q.pop_before((10, 0)), None);
        // The base parked at 10, not beyond: tick-10 inserts still work.
        q.insert(10, 2, ());
        q.insert(12, 3, ());
        assert_eq!(drain(&mut q), vec![(10, 2), (12, 3)]);
    }

    #[test]
    fn buckets_are_recycled() {
        let mut q = BucketQueue::new();
        for round in 0..100u64 {
            q.push(round * 3, round * 2 + 1, ());
            q.push(round * 3 + 1, round * 2 + 2, ());
            let _ = q.pop();
            let _ = q.pop();
        }
        assert!(q.is_empty());
        // The pool keeps bucket allocations bounded regardless of rounds.
        assert!(q.pool.len() <= 8, "pool grew to {}", q.pool.len());
    }
}
