//! Runtime-environment abstraction for the RDT checkpointing stack.
//!
//! The paper defines the middleware independently of any simulator; this
//! crate makes the code match. Everything the protocol layer needs from
//! "the outside world" is narrowed to four trait capabilities:
//!
//! * [`Clock`] — a monotone source of ticks;
//! * [`Rng`] — the two random draws the drivers actually make
//!   (Bernoulli trials and inclusive uniform ranges);
//! * [`Transport`] — framed, unreliable, unordered message exchange;
//! * [`Storage`] — the durability sink a middleware commits its
//!   checkpoint store and incarnation WAL into.
//!
//! Two bundles implement them:
//!
//! * [`SimEnv`] — deterministic virtual clock over the bucket calendar
//!   queue plus a seeded generator. Fixed-seed runs are replay-golden:
//!   the discrete-event engine draws through this bundle in exactly the
//!   order it always did, so goldens stay byte-identical.
//! * [`RealEnv`] — a monotonic OS clock, an entropy-seeded generator and
//!   a Unix-domain-socket loopback transport for N real processes. The
//!   matching durable [`Storage`] implementation lives in `rdt-storage`
//!   (`DiskSink`), since durability depends on crates above this one.
//!
//! The [`wire`] module carries piggybacked dependency vectors between real
//! processes in a checksummed frame; [`queue`] holds the calendar queue
//! the simulated environment schedules through.

#![forbid(unsafe_code)]

pub mod clock;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod storage;
pub mod transport;
pub mod wire;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use queue::BucketQueue;
pub use rng::{DetRng, Rng};
pub use shard::ShardEnv;
pub use sim::SimEnv;
pub use storage::{Storage, Volatile};
pub use transport::{ChannelTransport, Transport, UdsTransport};
pub use wire::WireFrame;

/// The real-runtime bundle: monotonic clock + entropy-seeded generator +
/// a caller-chosen transport. The durability half of a real environment
/// attaches to the middleware itself (see `rdt_storage::DiskSink`), so
/// this bundle stays below the storage crates in the dependency order.
#[derive(Debug)]
pub struct RealEnv<T: Transport> {
    /// Monotonic wall-clock ticks (microseconds since construction).
    pub clock: MonotonicClock,
    /// Seeded generator driving workload decisions.
    pub rng: DetRng,
    /// Loopback transport to the other processes.
    pub transport: T,
}

impl<T: Transport> RealEnv<T> {
    /// Bundles a transport with a fresh monotonic clock and a generator
    /// seeded from `seed` (pass an entropy-derived seed for production
    /// use, a fixed one for reproducible demos).
    pub fn new(seed: u64, transport: T) -> Self {
        Self {
            clock: MonotonicClock::new(),
            rng: DetRng::seeded(seed),
            transport,
        }
    }
}
