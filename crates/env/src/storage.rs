//! Storage capability: the durability sink behind a middleware.
//!
//! The protocol code mutates its in-memory [`CheckpointStore`] and then
//! offers the new state to its sink. In the simulator the sink is
//! [`Volatile`] — a zero-sized no-op whose error type is uninhabited, so
//! the compiler erases every commit call and fixed-seed behaviour is
//! untouched. In the real runtime the sink is `rdt_storage::DiskSink`,
//! which mirrors the store into a `DurableStore` on the filesystem and
//! write-aheads incarnation bumps so a kill-9 between "decide to roll
//! back" and "finish rolling back" still recovers to a total order.

use std::convert::Infallible;
use std::fmt;

use rdt_base::Incarnation;
use rdt_core::CheckpointStore;

/// Where a middleware's checkpoint state goes to survive the process.
///
/// Implementations must be crash-ordered: `wal_incarnation(i)` must be
/// durable before any `commit` that reflects incarnation `i` state, which
/// the middleware guarantees by calling it first (write-ahead).
pub trait Storage: fmt::Debug {
    /// Commit failure. `Infallible` for in-memory sinks lets the
    /// compiler drop the error paths entirely.
    type Error: fmt::Display + fmt::Debug;

    /// Makes the current contents of `store` durable (checkpoints added
    /// and collected since the last commit).
    fn commit(&mut self, store: &CheckpointStore) -> Result<(), Self::Error>;

    /// Write-ahead record that the owner is about to enter `incarnation`
    /// (called *before* the in-memory rollback mutates anything).
    fn wal_incarnation(&mut self, incarnation: Incarnation) -> Result<(), Self::Error>;
}

/// The simulator's sink: state lives (and dies) with the process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Volatile;

impl Storage for Volatile {
    type Error = Infallible;

    fn commit(&mut self, _store: &CheckpointStore) -> Result<(), Infallible> {
        Ok(())
    }

    fn wal_incarnation(&mut self, _incarnation: Incarnation) -> Result<(), Infallible> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_base::ProcessId;

    #[test]
    fn volatile_accepts_everything() {
        let mut sink = Volatile;
        let store = CheckpointStore::new(ProcessId::new(0));
        assert!(sink.commit(&store).is_ok());
        assert!(sink.wal_incarnation(Incarnation::new(3)).is_ok());
    }
}
