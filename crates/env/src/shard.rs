//! Per-shard slice of the simulated environment: a virtual clock over a
//! bucket queue, **without** a generator.
//!
//! The sharded engine pre-plans every random draw in a sequential planning
//! pass (so draw order cannot depend on shard interleaving), which leaves
//! a shard worker with exactly two needs: hold its processes' events in
//! `(at, seq)` order, and advance a local clock as it consumes them.
//! Cross-shard deliveries arrive between windows via
//! [`insert`](BucketQueue::insert) — out of global sequence order, which
//! is why this bundle is not just a `SimEnv` with the rng ignored.

use crate::clock::{Clock, VirtualClock};
use crate::queue::BucketQueue;

/// Event queue + clock for one shard of a partitioned simulation.
///
/// All events carry the *global* `(at, seq)` keys assigned by the planning
/// pass; a worker drains the ones it owns, strictly below each lookahead
/// bound, through [`pop_before`](Self::pop_before).
#[derive(Debug, Default)]
pub struct ShardEnv<T> {
    clock: VirtualClock,
    queue: BucketQueue<T>,
}

impl<T> ShardEnv<T> {
    /// An empty shard environment at tick 0.
    pub fn new() -> Self {
        Self {
            clock: VirtualClock::new(),
            queue: BucketQueue::new(),
        }
    }

    /// The shard-local virtual time: the tick of the last popped event.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues `item` under its pre-assigned global key.
    pub fn insert(&mut self, at: u64, seq: u64, item: T) {
        self.queue.insert(at, seq, item);
    }

    /// Pops the earliest event strictly below `bound` and advances the
    /// clock to it; `None` once the window is drained.
    pub fn pop_before(&mut self, bound: (u64, u64)) -> Option<(u64, u64, T)> {
        let (at, seq, item) = self.queue.pop_before(bound)?;
        self.clock.advance_to(at);
        Some((at, seq, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_popped_events_within_windows() {
        let mut env: ShardEnv<&str> = ShardEnv::new();
        env.insert(5, 2, "a");
        env.insert(9, 1, "b");
        assert_eq!(env.now(), 0);
        assert_eq!(env.pop_before((9, 1)), Some((5, 2, "a")));
        assert_eq!(env.now(), 5);
        assert_eq!(env.pop_before((9, 1)), None);
        assert_eq!(env.now(), 5, "an empty window leaves the clock alone");
        assert_eq!(env.pop_before((u64::MAX, u64::MAX)), Some((9, 1, "b")));
        assert_eq!(env.now(), 9);
        assert!(env.is_empty());
    }
}
