//! Wire codec for piggybacked application messages between real
//! processes.
//!
//! Inside one process the piggyback is an interned `Rc`/`Arc` snapshot;
//! across a process boundary it has to be bytes. A frame carries exactly
//! what `Middleware::receive` needs — the sender, the per-sender message
//! sequence number, the sender's current checkpoint index and the full
//! dependency vector as `(incarnation, interval)` lineage pairs — plus a
//! compact trace context (the sender's causal parent, i.e. the last frame
//! it applied before this send) for cross-process happened-before
//! reconstruction, a magic tag and an FNV-1a checksum so a torn or alien
//! datagram is rejected instead of parsed.
//!
//! All integers are little-endian. Current (v2) layout:
//!
//! ```text
//! magic          u32   0x7174_4452 ("RDTq")
//! sender         u32
//! seq            u64
//! index          u64
//! parent_origin  u32   u32::MAX when the send has no causal parent
//! parent_seq     u64
//! n              u32
//! n × (incarnation u32, interval u64)
//! fnv            u64   checksum over everything above
//! ```
//!
//! The v1 layout (`"RDTp"`, no `parent_*` fields) is still decoded —
//! frames persisted before the trace-context bump, or sent by an older
//! peer, parse with `parent = None`. Encoding always emits v2.

use rdt_base::ProcessId;

/// Current frame magic: `b"RDTq"` read as a little-endian u32 (v2, with
/// trace context).
const MAGIC_V2: u32 = u32::from_le_bytes(*b"RDTq");

/// Legacy frame magic: `b"RDTp"` (v1, no trace context). Decode-only.
const MAGIC_V1: u32 = u32::from_le_bytes(*b"RDTp");

/// `parent_origin` sentinel marking a frame without a causal parent.
const NO_PARENT: u32 = u32::MAX;

/// One application message on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Originating process.
    pub sender: ProcessId,
    /// Sender-local message sequence number (trace identity).
    pub seq: u64,
    /// The piggybacked checkpoint index (`Piggyback::index`).
    pub index: u64,
    /// Causal parent: the `(origin, seq)` identity of the last frame the
    /// sender applied before this send, `None` for a root send. Purely
    /// observational — the protocol layer ignores it; `rdt causal` uses it
    /// to stitch per-process traces into one happened-before order.
    pub parent: Option<(u32, u64)>,
    /// The sender's dependency vector as raw `(incarnation, interval)`
    /// lineages, one per process.
    pub lineages: Vec<(u32, usize)>,
}

/// FNV-1a over a byte slice; cheap, endian-stable, good enough to reject
/// torn datagrams (corruption detection, not authentication).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl WireFrame {
    /// Serializes the frame (v2 layout), appending the checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 8 + 8 + 4 + 8 + 4 + self.lineages.len() * 12 + 8);
        out.extend_from_slice(&MAGIC_V2.to_le_bytes());
        out.extend_from_slice(&(self.sender.index() as u32).to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        let (parent_origin, parent_seq) = self.parent.unwrap_or((NO_PARENT, 0));
        out.extend_from_slice(&parent_origin.to_le_bytes());
        out.extend_from_slice(&parent_seq.to_le_bytes());
        out.extend_from_slice(&(self.lineages.len() as u32).to_le_bytes());
        for &(inc, interval) in &self.lineages {
            out.extend_from_slice(&inc.to_le_bytes());
            out.extend_from_slice(&(interval as u64).to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and checksums a frame, accepting both the current v2 layout
    /// and the legacy v1 layout (which parses with `parent = None`).
    /// `None` for anything malformed: unknown magic, truncation, trailing
    /// bytes or checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        struct Cursor<'a> {
            bytes: &'a [u8],
            at: usize,
        }
        impl<'a> Cursor<'a> {
            fn u32(&mut self) -> Option<u32> {
                let b = self.bytes.get(self.at..self.at + 4)?;
                self.at += 4;
                Some(u32::from_le_bytes(b.try_into().expect("4 bytes")))
            }
            fn u64(&mut self) -> Option<u64> {
                let b = self.bytes.get(self.at..self.at + 8)?;
                self.at += 8;
                Some(u64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
        }
        let mut cur = Cursor { bytes, at: 0 };

        let versioned = match cur.u32()? {
            MAGIC_V2 => true,
            MAGIC_V1 => false,
            _ => return None,
        };
        let sender = cur.u32()? as usize;
        let seq = cur.u64()?;
        let index = cur.u64()?;
        let parent = if versioned {
            let parent_origin = cur.u32()?;
            let parent_seq = cur.u64()?;
            if parent_origin == NO_PARENT {
                // The sentinel must carry a zero seq; anything else is a
                // malformed (likely torn) frame, not a valid "no parent".
                if parent_seq != 0 {
                    return None;
                }
                None
            } else {
                Some((parent_origin, parent_seq))
            }
        } else {
            None
        };
        let n = cur.u32()? as usize;
        // Bound n by what the buffer can actually hold before allocating.
        if bytes.len() < cur.at + n * 12 + 8 {
            return None;
        }
        let mut lineages = Vec::with_capacity(n);
        for _ in 0..n {
            let inc = cur.u32()?;
            let interval = cur.u64()? as usize;
            lineages.push((inc, interval));
        }
        let body_end = cur.at;
        let sum = cur.u64()?;
        if cur.at != bytes.len() || sum != fnv1a(&bytes[..body_end]) {
            return None;
        }
        Some(Self {
            sender: ProcessId::new(sender),
            seq,
            index,
            parent,
            lineages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> WireFrame {
        WireFrame {
            sender: ProcessId::new(2),
            seq: 41,
            index: 7,
            parent: Some((0, 40)),
            lineages: vec![(0, 3), (1, 0), (0, 9)],
        }
    }

    /// Hand-encodes the same logical frame in the legacy v1 layout.
    fn v1_bytes(f: &WireFrame) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_V1.to_le_bytes());
        out.extend_from_slice(&(f.sender.index() as u32).to_le_bytes());
        out.extend_from_slice(&f.seq.to_le_bytes());
        out.extend_from_slice(&f.index.to_le_bytes());
        out.extend_from_slice(&(f.lineages.len() as u32).to_le_bytes());
        for &(inc, interval) in &f.lineages {
            out.extend_from_slice(&inc.to_le_bytes());
            out.extend_from_slice(&(interval as u64).to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn round_trip() {
        let f = frame();
        let bytes = f.encode();
        assert_eq!(WireFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn round_trip_without_parent() {
        let f = WireFrame {
            parent: None,
            ..frame()
        };
        let bytes = f.encode();
        assert_eq!(WireFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn legacy_v1_frames_decode_with_no_parent() {
        let f = frame();
        let decoded = WireFrame::decode(&v1_bytes(&f)).expect("v1 frame parses");
        assert_eq!(decoded.parent, None);
        assert_eq!(
            decoded,
            WireFrame {
                parent: None,
                ..f
            }
        );
    }

    #[test]
    fn corruption_is_rejected() {
        for f in [frame(), WireFrame { parent: None, ..frame() }] {
            let mut bytes = f.encode();
            for i in 0..bytes.len() {
                bytes[i] ^= 0x40;
                assert_eq!(WireFrame::decode(&bytes), None, "flipped byte {i} parsed");
                bytes[i] ^= 0x40;
            }
        }
    }

    #[test]
    fn v1_corruption_is_rejected() {
        let mut bytes = v1_bytes(&frame());
        for i in 0..bytes.len() {
            bytes[i] ^= 0x40;
            assert_eq!(WireFrame::decode(&bytes), None, "flipped v1 byte {i} parsed");
            bytes[i] ^= 0x40;
        }
    }

    #[test]
    fn truncation_and_padding_are_rejected() {
        let bytes = frame().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                WireFrame::decode(&bytes[..cut]),
                None,
                "prefix {cut} parsed"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(WireFrame::decode(&padded), None);
    }

    #[test]
    fn alien_magic_is_rejected() {
        let mut bytes = frame().encode();
        bytes[0] = b'X';
        assert_eq!(WireFrame::decode(&bytes), None);
    }
}
