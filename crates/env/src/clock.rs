//! Clock capability: a monotone tick source.
//!
//! The simulated clock is a plain counter advanced by the event loop; the
//! real clock counts microseconds on `std::time::Instant`. Both report
//! `u64` ticks so the protocol drivers never branch on which world they
//! are in.

use std::time::Instant;

/// A monotone source of ticks. Implementations never go backwards.
pub trait Clock {
    /// The current tick.
    fn now(&self) -> u64;
}

/// Deterministic virtual time: a counter the simulation loop advances as
/// it consumes events. Never moves on its own.
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances to `at` if it is ahead; a lagging `at` leaves the clock
    /// untouched (time never rewinds, mirroring the old engine's
    /// `self.time = at.max(self.time)`).
    pub fn advance_to(&mut self, at: u64) {
        self.now = self.now.max(at);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.now
    }
}

/// Real time: microseconds elapsed since the clock was built, measured on
/// the OS monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose tick 0 is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(4); // lagging event tick must not rewind time
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
