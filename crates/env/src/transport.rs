//! Transport capability: framed, unreliable, unordered message exchange.
//!
//! Semantics are deliberately datagram-shaped to match what the protocol
//! tolerates anyway (the paper's channels are lossy and unordered):
//! `send` is fire-and-forget, `recv` polls with a short timeout and
//! returns `Ok(None)` when nothing arrived. Two implementations:
//!
//! * [`UdsTransport`] — one Unix-domain datagram socket per process in a
//!   shared directory; this is what `rdt serve` workers use across real
//!   OS process boundaries, and what the kill-9 chaos harness tears
//!   through.
//! * [`ChannelTransport`] — an in-process mpsc mesh for tests that want
//!   real transport semantics without touching the filesystem.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::time::Duration;

use rdt_base::ProcessId;

/// Maximum frame size any transport must carry. Generous for piggybacked
/// dependency vectors (12 bytes per process plus a fixed header).
pub const MAX_FRAME: usize = 64 * 1024;

/// Fire-and-forget framed messaging between the `n` processes of a
/// system. Loss and reordering are allowed; duplication is not expected
/// but the protocol survives it.
pub trait Transport {
    /// Sends one frame towards `to`. Undeliverable frames (peer not yet
    /// bound, peer dead) are dropped silently — that is a lossy channel,
    /// not an error.
    fn send(&mut self, to: ProcessId, frame: &[u8]) -> io::Result<()>;

    /// Polls for one incoming frame, waiting at most the transport's
    /// configured timeout. `Ok(None)` means "nothing right now".
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>>;
}

/// The Unix-domain socket path for process `rank` under `dir`.
pub fn socket_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("p{rank}.sock"))
}

/// One `UnixDatagram` per process, named `p<rank>.sock` in a shared
/// directory. Datagram sockets preserve frame boundaries, so no extra
/// length-prefixing is needed on the wire.
#[derive(Debug)]
pub struct UdsTransport {
    dir: PathBuf,
    socket: std::os::unix::net::UnixDatagram,
}

impl UdsTransport {
    /// Binds `dir/p<rank>.sock`, replacing any stale socket file left by
    /// a killed predecessor (the chaos harness depends on rebinding).
    pub fn bind(dir: &Path, rank: usize, timeout: Duration) -> io::Result<Self> {
        let path = socket_path(dir, rank);
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let socket = std::os::unix::net::UnixDatagram::bind(&path)?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            socket,
        })
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, to: ProcessId, frame: &[u8]) -> io::Result<()> {
        let path = socket_path(&self.dir, to.index());
        match self.socket.send_to(frame, &path) {
            Ok(_) => Ok(()),
            // The peer is not bound (not started yet, or killed): a lossy
            // channel drops the frame and moves on.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::NotFound
                        | io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::WouldBlock
                ) =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match self.socket.recv(buf) {
            Ok(len) => Ok(Some(len)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// In-process transport mesh over bounded mpsc channels: same trait
/// semantics as the socket transport, no filesystem.
#[derive(Debug)]
pub struct ChannelTransport {
    inbox: Receiver<Vec<u8>>,
    peers: Vec<SyncSender<Vec<u8>>>,
    timeout: Duration,
}

impl ChannelTransport {
    /// Builds a fully-connected mesh of `n` endpoints. Endpoint `i` of
    /// the returned vector belongs to process `i`.
    pub fn mesh(n: usize, timeout: Duration) -> Vec<Self> {
        let (senders, inboxes): (Vec<_>, Vec<_>) =
            (0..n).map(|_| mpsc::sync_channel::<Vec<u8>>(1024)).unzip();
        inboxes
            .into_iter()
            .map(|inbox| Self {
                inbox,
                peers: senders.clone(),
                timeout,
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: ProcessId, frame: &[u8]) -> io::Result<()> {
        // A full or disconnected inbox is a dropped frame, per the lossy
        // contract.
        let _ = self.peers[to.index()].try_send(frame.to_vec());
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match self.inbox.recv_timeout(self.timeout) {
            Ok(frame) => {
                let len = frame.len().min(buf.len());
                buf[..len].copy_from_slice(&frame[..len]);
                Ok(Some(len))
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mesh_routes_frames() {
        let mut mesh = ChannelTransport::mesh(3, Duration::from_millis(10));
        let frame = b"hello from 0";
        mesh[0].send(ProcessId::new(2), frame).unwrap();
        let mut buf = [0u8; 64];
        let got = mesh[2].recv(&mut buf).unwrap().expect("frame arrives");
        assert_eq!(&buf[..got], frame);
        // Nothing else pending: recv times out as None, not an error.
        assert!(mesh[2].recv(&mut buf).unwrap().is_none());
    }

    #[test]
    fn uds_transport_round_trips_and_tolerates_dead_peers() {
        let dir = std::env::temp_dir().join(format!("rdt-env-uds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = UdsTransport::bind(&dir, 0, Duration::from_millis(20)).unwrap();
        let mut b = UdsTransport::bind(&dir, 1, Duration::from_millis(20)).unwrap();
        a.send(ProcessId::new(1), b"ping").unwrap();
        let mut buf = [0u8; 16];
        let got = b.recv(&mut buf).unwrap().expect("frame arrives");
        assert_eq!(&buf[..got], b"ping");
        // Sending to an unbound rank is a silent drop.
        a.send(ProcessId::new(2), b"void").unwrap();
        // And an idle socket times out cleanly.
        assert!(a.recv(&mut buf).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uds_rebind_replaces_stale_socket() {
        let dir = std::env::temp_dir().join(format!("rdt-env-rebind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = UdsTransport::bind(&dir, 0, Duration::from_millis(5)).unwrap();
        drop(first); // socket file is left behind, as after a kill -9
        let mut again = UdsTransport::bind(&dir, 0, Duration::from_millis(5)).unwrap();
        let mut buf = [0u8; 8];
        assert!(again.recv(&mut buf).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
