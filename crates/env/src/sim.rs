//! The simulated environment: virtual clock + calendar queue + seeded rng.
//!
//! `SimEnv` is exactly the scheduling core the discrete-event engine used
//! to carry inline — the same `(at, seq)` order, the same `seq` counter
//! semantics (starts at 0, increments after each push), the same
//! time-advance rule (`now = max(now, at)`), the same single `StdRng`
//! stream behind the [`Rng`](crate::Rng) trait. Moving it behind this
//! type is a relocation, not a behaviour change: fixed-seed runs through
//! `SimEnv` are byte-identical to the pre-refactor engine, which the
//! replay goldens in `rdt-sim` pin.

use crate::clock::{Clock, VirtualClock};
use crate::queue::BucketQueue;
use crate::rng::DetRng;

/// Deterministic simulated runtime: schedule events, pop them in
/// `(at, seq)` order, advance virtual time as they are consumed.
#[derive(Debug)]
pub struct SimEnv<T> {
    clock: VirtualClock,
    seq: u64,
    queue: BucketQueue<T>,
    rng: DetRng,
}

impl<T> SimEnv<T> {
    /// A fresh environment at tick 0 whose rng stream is determined by
    /// `seed`. Callers that previously mixed a salt into the seed (the
    /// engine XORs `0x5eed_c0de`) pass the mixed value here.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: VirtualClock::new(),
            seq: 0,
            queue: BucketQueue::new(),
            rng: DetRng::seeded(seed),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Enqueues `item` at tick `at`, stamping it with the next sequence
    /// number (total order over equal ticks is push order).
    pub fn schedule(&mut self, at: u64, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, item);
    }

    /// Dequeues the earliest event, advancing the clock to its tick
    /// (never backwards). Returns `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let (at, seq, item) = self.queue.pop()?;
        self.clock.advance_to(at);
        Some((at, seq, item))
    }

    /// In-place drain of scheduled events failing `keep`; dropped events
    /// are handed to `drop_fn` with their tick in `(at, seq)` order.
    /// This is the crash-session cancel path.
    pub fn cancel(&mut self, keep: impl FnMut(&T) -> bool, drop_fn: impl FnMut(u64, T)) {
        self.queue.retain(keep, drop_fn);
    }

    /// Number of scheduled, not-yet-delivered events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The environment's random stream (use through the
    /// [`Rng`](crate::Rng) trait so draw order stays explicit).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng as _;

    #[test]
    fn events_pop_in_at_seq_order_and_advance_time() {
        let mut env: SimEnv<&str> = SimEnv::new(7);
        env.schedule(5, "b");
        env.schedule(2, "a");
        env.schedule(5, "c");
        assert_eq!(env.pending(), 3);
        assert_eq!(env.pop(), Some((2, 1, "a")));
        assert_eq!(env.now(), 2);
        assert_eq!(env.pop(), Some((5, 0, "b")));
        assert_eq!(env.pop(), Some((5, 2, "c")));
        assert_eq!(env.now(), 5);
        assert_eq!(env.pop(), None);
    }

    #[test]
    fn cancel_reports_drops_in_order() {
        let mut env: SimEnv<u8> = SimEnv::new(1);
        env.schedule(1, 10);
        env.schedule(2, 20);
        env.schedule(3, 10);
        let mut dropped = Vec::new();
        env.cancel(|&v| v != 10, |at, v| dropped.push((at, v)));
        assert_eq!(dropped, vec![(1, 10), (3, 10)]);
        assert_eq!(env.pending(), 1);
    }

    #[test]
    fn same_seed_same_draws() {
        let mut a: SimEnv<()> = SimEnv::new(42);
        let mut b: SimEnv<()> = SimEnv::new(42);
        for _ in 0..50 {
            assert_eq!(a.rng().chance(0.3), b.rng().chance(0.3));
            assert_eq!(a.rng().between(1, 9), b.rng().between(1, 9));
        }
    }
}
