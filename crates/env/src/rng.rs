//! Rng capability: exactly the two draws the protocol drivers make.
//!
//! The discrete-event engine decides message loss and crash correlation
//! with Bernoulli trials and channel delays with inclusive uniform
//! ranges. Narrowing the trait to those two calls keeps every
//! implementation honest about the draw *order*, which is what replay
//! goldens depend on: [`DetRng`] forwards `chance`/`between` one-to-one
//! onto `StdRng::{gen_bool, gen_range}`, so a fixed seed produces the
//! same stream through the trait as it did through the concrete type.

use std::time::{SystemTime, UNIX_EPOCH};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A source of the randomness the runtime drivers need.
pub trait Rng {
    /// Bernoulli trial with success probability `p` (`0.0 ..= 1.0`).
    fn chance(&mut self, p: f64) -> bool;

    /// Uniform draw from the inclusive range `lo ..= hi`.
    fn between(&mut self, lo: u64, hi: u64) -> u64;
}

/// Seeded deterministic generator: one `StdRng` draw per trait call, in
/// call order, so the stream is identical to driving `StdRng` directly.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A generator seeded from ambient entropy (wall time + PID). Good
    /// enough for the real runtime's workload jitter; use [`seeded`] for
    /// anything that must replay.
    ///
    /// [`seeded`]: DetRng::seeded
    pub fn from_entropy() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seeded(nanos ^ (u64::from(std::process::id()) << 32))
    }
}

impl Rng for DetRng {
    fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    fn between(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be a transparent view over `StdRng`: same seed, same
    /// call sequence, same values as the concrete generator. This is the
    /// contract the replay goldens lean on.
    #[test]
    fn det_rng_matches_std_rng_stream() {
        let mut via_trait = DetRng::seeded(99);
        let mut direct = StdRng::seed_from_u64(99);
        for round in 0..200u64 {
            assert_eq!(via_trait.chance(0.25), direct.gen_bool(0.25));
            assert_eq!(
                via_trait.between(round, round + 17),
                direct.gen_range(round..=round + 17)
            );
        }
    }

    #[test]
    fn between_is_inclusive() {
        let mut rng = DetRng::seeded(3);
        for _ in 0..100 {
            let v = rng.between(5, 5);
            assert_eq!(v, 5);
            let w = rng.between(0, 2);
            assert!(w <= 2);
        }
    }

    #[test]
    fn entropy_seeds_differ_across_draws() {
        // Not a strict guarantee (time could tie), but two constructions
        // separated by a spin should disagree on at least one of a few
        // draws almost surely.
        let mut a = DetRng::from_entropy();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut b = DetRng::from_entropy();
        let same = (0..8).all(|_| a.between(0, u64::MAX - 1) == b.between(0, u64::MAX - 1));
        assert!(
            !same,
            "independent entropy seeds produced identical streams"
        );
    }
}
