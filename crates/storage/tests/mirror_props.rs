//! Property test: a mirrored middleware behaves exactly like a plain one,
//! and its disk image always equals its in-memory stable store.

use std::path::PathBuf;

use proptest::prelude::*;
use rdt_base::{Payload, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, ProtocolKind};
use rdt_storage::MirroredMiddleware;

fn scratch(tag: u64) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "rdt-mirror-props-{}-{tag}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // generated uniformly; `b` is unused by this op set
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..4, 0usize..16, 0usize..16).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plain and mirrored middlewares, fed identical events, agree on every
    /// observable; the disk always equals the store.
    #[test]
    fn mirror_is_transparent(seed in 0u64..1_000_000, ops in ops(30), proto in prop::sample::select(vec![ProtocolKind::Fdas, ProtocolKind::Cas])) {
        let n = 2;
        let dir = scratch(seed);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let mut plain = Middleware::new(p0, n, proto, GcKind::RdtLgc);
        let mut mirrored =
            MirroredMiddleware::create(&dir, p0, n, proto, GcKind::RdtLgc).expect("scratch dir");
        // A fixed peer feeding both the same piggybacks.
        let mut peer = Middleware::new(p1, n, proto, GcKind::RdtLgc);

        for op in &ops {
            match op.kind {
                0 => {
                    let a = plain.basic_checkpoint().expect("alive");
                    let b = mirrored.basic_checkpoint().expect("alive + disk");
                    prop_assert_eq!(a, b);
                }
                1 => {
                    let a = plain.send(p1, Payload::empty());
                    let b = mirrored.send(p1, Payload::empty()).expect("disk");
                    prop_assert_eq!(a.meta.dv, b.meta.dv);
                }
                2 => {
                    if op.a % 3 == 0 {
                        peer.basic_checkpoint().expect("alive");
                    }
                    let pb = peer.piggyback();
                    peer.send(p0, Payload::empty());
                    let a = plain.receive_piggyback(&pb).expect("alive");
                    let b = mirrored.receive_piggyback(&pb).expect("alive + disk");
                    prop_assert_eq!(a, b);
                }
                _ => {
                    // Roll both back to their last stable checkpoint.
                    let target = plain.last_stable();
                    let a = plain.rollback(target, None).expect("stored");
                    let b = mirrored.rollback(target, None).expect("stored");
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(plain.dv(), mirrored.middleware().dv());
            prop_assert_eq!(
                mirrored.disk().indices().expect("readable"),
                mirrored.middleware().store().indices().collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
