//! Property tests for the on-disk codec: roundtrip fidelity and rejection
//! of every single-bit corruption.

use proptest::prelude::*;
use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};
use rdt_storage::codec::{decode, encode, Record};

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        0usize..64,
        0usize..10_000,
        // Incarnation-qualified entries, spanning the packed fields up to
        // their exact maxima (the top of each range is promoted to the
        // field maximum): the wide v2 encoding must carry both components
        // faithfully.
        prop::collection::vec((0u32..16, 0usize..1_000_000), 1..32),
        0usize..(1 << 30),
    )
        .prop_map(|(owner, index, lineages, state_size)| {
            let lineages = lineages
                .into_iter()
                .map(|(v, g)| {
                    (
                        if v == 15 {
                            rdt_base::DvEntry::MAX_INCARNATION
                        } else {
                            v
                        },
                        if g >= 999_000 {
                            rdt_base::DvEntry::MAX_INTERVAL
                        } else {
                            g
                        },
                    )
                })
                .collect();
            Record {
                owner: ProcessId::new(owner),
                index: CheckpointIndex::new(index),
                dv: DependencyVector::from_lineages(lineages),
                state_size,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_is_identity(record in record_strategy()) {
        prop_assert_eq!(decode(&encode(&record)).unwrap(), record);
    }

    /// Any single flipped bit is caught — by the checksum, or by a
    /// structural check that fires first.
    #[test]
    fn every_single_bit_flip_is_rejected(record in record_strategy(), which in any::<prop::sample::Index>()) {
        let mut bytes = encode(&record);
        let bit = which.index(bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match decode(&bytes) {
            Err(_) => {}
            // A flip could conceivably produce a *different* valid record
            // only if FNV collides on a 1-bit delta, which it cannot for
            // records of this size; decoding the same record back would
            // mean the flip changed nothing, also impossible.
            Ok(decoded) => prop_assert_ne!(decoded, record, "corruption accepted"),
        }
    }

    /// Any truncation is rejected.
    #[test]
    fn truncations_are_rejected(record in record_strategy(), cut in any::<prop::sample::Index>()) {
        let bytes = encode(&record);
        let len = cut.index(bytes.len()); // strictly shorter
        prop_assert!(decode(&bytes[..len]).is_err());
    }
}
