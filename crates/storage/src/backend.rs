//! Pluggable filesystem backends for the durable store.
//!
//! [`DurableStore`](crate::DurableStore) performs every filesystem
//! operation through the [`StorageBackend`] trait, so the same
//! atomic-write/rename/fsync discipline can run against the real
//! filesystem ([`StdFs`]) or a deterministic fault injector ([`FaultFs`])
//! that torments it with the crash images and I/O failures the paper's
//! stable-storage contract has to survive: stopping dead after any
//! operation, tearing a write to a prefix, flipping a bit, losing a rename
//! (the crash-before-directory-fsync image), and transient `EIO`/`ENOSPC`
//! bursts.
//!
//! Faults are driven by a [`FaultPlan`] keyed on a global operation
//! counter shared by every clone of a `FaultFs`, so a multi-process
//! harness (one store per process directory) enumerates crash points over
//! one deterministic, totally ordered operation sequence — the basis of
//! the [`torture`](crate::torture) harness.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The filesystem surface the durable store relies on.
///
/// Implementations must make `write` + `fsync` + `rename` + `fsync_dir`
/// sufficient for the usual atomic-replace discipline: a `rename` is only
/// durable once the parent directory has been fsynced.
pub trait StorageBackend: fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors ([`io::ErrorKind::NotFound`] for absent files).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates) `path` and writes `bytes`. Not durable until
    /// [`fsync`](Self::fsync) succeeds.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes the file at `path` to stable media.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Flushes the directory entry table of `dir` — what actually commits
    /// a rename performed inside it.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically replaces `to` with `from`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors ([`io::ErrorKind::NotFound`] if absent).
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// The file names (not paths) inside `dir`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// The real filesystem, with the full fsync discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl StorageBackend for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and syncing it flushes its entry
        // table on the platforms we target; where directories cannot be
        // opened (some non-Unix filesystems) the sync is skipped, matching
        // the weaker guarantees those platforms offer anyway.
        match fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(out)
    }
}

/// One injected fault, keyed to a backend-operation index in a
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A `write` at this operation stores only the first half of its bytes
    /// (prefix truncation), reports success, and the backend crashes at
    /// the next operation — the crash image of dying mid-write, before
    /// the following fsync could have confirmed the bytes. Non-write
    /// operations are unaffected.
    TornWrite,
    /// A `write` at this operation has one bit flipped (deterministically
    /// chosen from the operation index), reports success, and the backend
    /// crashes at the next operation.
    BitFlip,
    /// A `rename` at this operation reports success without renaming, and
    /// the backend crashes at the next operation — the on-disk image of
    /// dying between `rename` and the parent-directory fsync. A lost
    /// rename *without* a crash does not exist on a real filesystem (the
    /// rename is only lost because the machine died before the directory
    /// entry reached media), and modelling one would let execution
    /// continue into garbage-collection removals that delete the
    /// checkpoint the lost rename was meant to replace.
    LostRename,
    /// This operation (whatever it is) fails with `EIO`; the bounded
    /// retry path in `DurableStore` is expected to absorb it on a
    /// subsequent attempt.
    TransientEio,
    /// As [`TransientEio`](Self::TransientEio), with `ENOSPC`.
    TransientEnospc,
}

/// A deterministic schedule of faults over the global operation sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Operations `0..stop_after` execute; every later operation fails
    /// with an injected-crash error and marks the backend crashed.
    pub stop_after: Option<u64>,
    /// Faults keyed by operation index.
    pub faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// A plan with no faults (pure operation counting).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan that crashes the backend after `k` operations have executed.
    pub fn crash_after(k: u64) -> Self {
        Self {
            stop_after: Some(k),
            faults: BTreeMap::new(),
        }
    }

    /// Adds a fault at operation `op`.
    pub fn with_fault(mut self, op: u64, kind: FaultKind) -> Self {
        self.faults.insert(op, kind);
        self
    }
}

#[derive(Debug)]
struct FaultState {
    ops: u64,
    plan: FaultPlan,
    crashed: bool,
    injected: u64,
}

/// A deterministic fault-injecting backend over the real filesystem.
///
/// All clones share one operation counter and plan, so the injector spans
/// every process directory of a harness. After the plan's crash point
/// fires, every operation fails until the state is inspected and the
/// harness restarts from the surviving files with a fresh backend.
#[derive(Debug, Clone)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
    inner: StdFs,
}

/// The operation kinds a fault can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Write,
    Rename,
    Other,
}

impl FaultFs {
    /// A fault injector over the real filesystem, driven by `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            state: Arc::new(Mutex::new(FaultState {
                ops: 0,
                plan,
                crashed: false,
                injected: 0,
            })),
            inner: StdFs,
        }
    }

    /// Operations executed so far across all clones.
    pub fn ops_executed(&self) -> u64 {
        self.state.lock().expect("fault state").ops
    }

    /// Whether the plan's crash point has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().expect("fault state").crashed
    }

    /// Number of faults actually injected (a fault keyed to an operation
    /// of the wrong kind does not fire).
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().expect("fault state").injected
    }

    /// Ticks the operation clock; returns the fault to apply, if any.
    ///
    /// # Errors
    ///
    /// The injected-crash error once the crash point has fired, or an
    /// injected transient error.
    fn admit(&self, kind: OpKind) -> io::Result<Option<FaultKind>> {
        let mut st = self.state.lock().expect("fault state");
        if st.crashed {
            return Err(crash_error());
        }
        let op = st.ops;
        if let Some(stop) = st.plan.stop_after {
            if op >= stop {
                st.crashed = true;
                return Err(crash_error());
            }
        }
        st.ops += 1;
        match st.plan.faults.get(&op).copied() {
            Some(FaultKind::TransientEio) => {
                st.injected += 1;
                Err(io::Error::from_raw_os_error(libc_eio()))
            }
            Some(FaultKind::TransientEnospc) => {
                st.injected += 1;
                Err(io::Error::from_raw_os_error(libc_enospc()))
            }
            Some(f @ FaultKind::TornWrite) | Some(f @ FaultKind::BitFlip)
                if kind == OpKind::Write =>
            {
                st.injected += 1;
                st.crashed = true; // this op "succeeds", then the machine dies
                Ok(Some(f))
            }
            Some(f @ FaultKind::LostRename) if kind == OpKind::Rename => {
                st.injected += 1;
                st.crashed = true;
                Ok(Some(f))
            }
            _ => Ok(None),
        }
    }
}

/// The marker error every post-crash operation returns.
fn crash_error() -> io::Error {
    io::Error::other("injected crash: backend stopped at its planned operation")
}

const fn libc_eio() -> i32 {
    5
}

const fn libc_enospc() -> i32 {
    28
}

impl StorageBackend for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.admit(OpKind::Other)?;
        self.inner.create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.admit(OpKind::Other)?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.admit(OpKind::Write)? {
            Some(FaultKind::TornWrite) => self.inner.write(path, &bytes[..bytes.len() / 2]),
            Some(FaultKind::BitFlip) if !bytes.is_empty() => {
                let mut corrupted = bytes.to_vec();
                // Deterministic victim bit derived from the payload length.
                let byte = corrupted.len() / 2;
                corrupted[byte] ^= 1 << (corrupted.len() % 8);
                self.inner.write(path, &corrupted)
            }
            _ => self.inner.write(path, bytes),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.admit(OpKind::Other)?;
        self.inner.fsync(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.admit(OpKind::Other)?;
        self.inner.fsync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.admit(OpKind::Rename)? {
            Some(FaultKind::LostRename) => Ok(()),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.admit(OpKind::Other)?;
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.admit(OpKind::Other)?;
        self.inner.list(dir)
    }
}

/// Whether an I/O error is worth a bounded retry: interrupted calls,
/// timeouts, and the `EIO`/`ENOSPC`/`EAGAIN` family that storage layers
/// surface for conditions that often clear (device hiccup, space freed by
/// concurrent garbage collection).
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    ) || matches!(e.raw_os_error(), Some(code) if code == libc_eio() || code == libc_enospc() || code == 11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rdt-backend-test-{}-{tag}-{seq}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stdfs_round_trips_and_lists() {
        let dir = scratch("std");
        let fs_ = StdFs;
        fs_.write(&dir.join("a.bin"), b"hello").unwrap();
        fs_.fsync(&dir.join("a.bin")).unwrap();
        fs_.rename(&dir.join("a.bin"), &dir.join("b.bin")).unwrap();
        fs_.fsync_dir(&dir).unwrap();
        assert_eq!(fs_.read(&dir.join("b.bin")).unwrap(), b"hello");
        assert_eq!(fs_.list(&dir).unwrap(), vec!["b.bin".to_string()]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn crash_point_stops_every_later_operation() {
        let dir = scratch("crash");
        let f = FaultFs::new(FaultPlan::crash_after(2));
        f.write(&dir.join("a"), b"x").unwrap(); // op 0
        f.write(&dir.join("b"), b"y").unwrap(); // op 1
        assert!(!f.has_crashed());
        assert!(f.write(&dir.join("c"), b"z").is_err()); // op 2: crash fires
        assert!(f.has_crashed());
        assert!(
            f.read(&dir.join("a")).is_err(),
            "crashed backends stay down"
        );
        assert_eq!(f.ops_executed(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_keeps_a_prefix_then_crashes() {
        let dir = scratch("torn");
        let f = FaultFs::new(FaultPlan::none().with_fault(0, FaultKind::TornWrite));
        f.write(&dir.join("t"), b"0123456789").unwrap();
        // The torn bytes are on "media"; the machine is dead.
        assert_eq!(StdFs.read(&dir.join("t")).unwrap(), b"01234");
        assert_eq!(f.faults_injected(), 1);
        assert!(f.has_crashed());
        assert!(f.read(&dir.join("t")).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit_then_crashes() {
        let dir = scratch("flip");
        let f = FaultFs::new(FaultPlan::none().with_fault(0, FaultKind::BitFlip));
        f.write(&dir.join("t"), b"0123456789").unwrap();
        let got = StdFs.read(&dir.join("t")).unwrap();
        let diff: u32 = got
            .iter()
            .zip(b"0123456789")
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert!(f.has_crashed());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lost_rename_leaves_the_target_absent_then_crashes() {
        let dir = scratch("rename");
        let f = FaultFs::new(FaultPlan::none().with_fault(1, FaultKind::LostRename));
        f.write(&dir.join("tmp"), b"x").unwrap(); // op 0
        f.rename(&dir.join("tmp"), &dir.join("final")).unwrap(); // op 1: lost
        assert!(StdFs.read(&dir.join("final")).is_err());
        assert!(StdFs.read(&dir.join("tmp")).is_ok(), "source survives");
        assert!(
            f.has_crashed(),
            "a rename is only lost because the machine died"
        );
        assert!(
            f.remove(&dir.join("tmp")).is_err(),
            "no operation can follow"
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn transient_faults_fail_once_then_clear() {
        let dir = scratch("transient");
        let f = FaultFs::new(FaultPlan::none().with_fault(0, FaultKind::TransientEio));
        let err = f.write(&dir.join("t"), b"x").unwrap_err();
        assert!(is_transient(&err));
        f.write(&dir.join("t"), b"x").unwrap(); // next op passes
        assert!(!f.has_crashed());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn crash_errors_are_not_transient() {
        assert!(!is_transient(&crash_error()));
    }

    #[test]
    fn clones_share_the_operation_clock() {
        let dir = scratch("clock");
        let a = FaultFs::new(FaultPlan::none());
        let b = a.clone();
        a.write(&dir.join("a"), b"x").unwrap();
        b.write(&dir.join("b"), b"y").unwrap();
        assert_eq!(a.ops_executed(), 2);
        assert_eq!(b.ops_executed(), 2);
        fs::remove_dir_all(dir).unwrap();
    }
}
