//! A per-process checkpoint directory that survives crashes.
//!
//! One file per stable checkpoint (`ckpt_<γ>.bin`, the [`codec`] format),
//! written atomically (temp file + rename + fsync) so a crash mid-write
//! never leaves a half-checkpoint that could be restored. This is the
//! "stable storage persists through failures" of the paper's Section 2,
//! made literal.
//!
//! Alongside the checkpoints lives the **incarnation log**
//! (`incarnation.bin`): the highest incarnation the owner ever opened,
//! written with the same atomic discipline. Rollbacks bump the incarnation
//! without storing a checkpoint, so a restart that read only the
//! checkpoint files could resume at an incarnation the dead execution
//! already used and propagated — aliasing the very knowledge incarnation
//! numbers exist to disambiguate.
//!
//! [`codec`]: crate::codec

use std::collections::BTreeSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use rdt_base::{CheckpointIndex, DependencyVector, Incarnation, ProcessId};
use rdt_core::CheckpointStore;

use crate::codec::{decode, encode, Record};
use crate::error::{Error, Result};

/// A durable, per-process stable store.
#[derive(Debug)]
pub struct DurableStore {
    owner: ProcessId,
    dir: PathBuf,
}

impl DurableStore {
    /// Opens (creating if needed) the checkpoint directory for `owner`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>, owner: ProcessId) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { owner, dir })
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, index: CheckpointIndex) -> PathBuf {
        self.dir.join(format!("ckpt_{}.bin", index.value()))
    }

    fn incarnation_path(&self) -> PathBuf {
        self.dir.join("incarnation.bin")
    }

    /// The incarnation log on disk: the highest incarnation the owner ever
    /// opened, or [`Incarnation::ZERO`] if never written (crash-free
    /// stores).
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::Corrupt`] for a malformed log.
    pub fn incarnation_floor(&self) -> Result<Incarnation> {
        match fs::read(self.incarnation_path()) {
            Ok(bytes) => {
                let arr: [u8; 4] = bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::Corrupt("incarnation log is not 4 bytes"))?;
                Ok(Incarnation::new(u32::from_le_bytes(arr)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Incarnation::ZERO),
            Err(e) => Err(e.into()),
        }
    }

    /// Persists the incarnation log atomically (temp file, fsync, rename).
    /// Monotone: never lowers the on-disk value.
    ///
    /// # Errors
    ///
    /// I/O errors along the write path.
    pub fn persist_incarnation_floor(&self, v: Incarnation) -> Result<()> {
        if v <= self.incarnation_floor()? {
            return Ok(());
        }
        let tmp = self.dir.join(".incarnation.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&v.value().to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.incarnation_path())?;
        Ok(())
    }

    /// Persists one checkpoint atomically: temp file, fsync, rename.
    ///
    /// # Errors
    ///
    /// I/O errors anywhere along the write path.
    pub fn persist(
        &self,
        index: CheckpointIndex,
        dv: &DependencyVector,
        state_size: usize,
    ) -> Result<()> {
        let record = Record {
            owner: self.owner,
            index,
            dv: dv.clone(),
            state_size,
        };
        let bytes = encode(&record);
        let tmp = self.dir.join(format!(".ckpt_{}.tmp", index.value()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(index))?;
        Ok(())
    }

    /// Eliminates one checkpoint from disk. Missing files are fine (the
    /// elimination may race a crash that already lost the rename).
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found".
    pub fn remove(&self, index: CheckpointIndex) -> Result<()> {
        match fs::remove_file(self.path_for(index)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// The checkpoint indices currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::UnrecognizedFile`] for alien files.
    pub fn indices(&self) -> Result<Vec<CheckpointIndex>> {
        let mut out = BTreeSet::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') {
                continue; // incomplete temp file from a crash: ignored
            }
            if name == "incarnation.bin" {
                continue; // the incarnation log is not a checkpoint
            }
            let index = name
                .strip_prefix("ckpt_")
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|num| num.parse::<usize>().ok())
                .ok_or_else(|| Error::UnrecognizedFile(name.to_string()))?;
            out.insert(CheckpointIndex::new(index));
        }
        Ok(out.into_iter().collect())
    }

    /// Loads and validates every checkpoint record, ascending by index.
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::Corrupt`] if any record fails validation (a
    /// store with an untrustworthy checkpoint must not be restored from
    /// blindly).
    pub fn load(&self) -> Result<Vec<Record>> {
        self.indices()?
            .into_iter()
            .map(|index| {
                let bytes = fs::read(self.path_for(index))?;
                let record = decode(&bytes)?;
                if record.owner != self.owner || record.index != index {
                    return Err(Error::Corrupt("record does not match its file name"));
                }
                Ok(record)
            })
            .collect()
    }

    /// Rebuilds an in-memory [`CheckpointStore`] from disk — the first step
    /// of a process restart.
    ///
    /// # Errors
    ///
    /// As for [`load`](Self::load).
    pub fn rebuild(&self) -> Result<CheckpointStore> {
        let mut store = CheckpointStore::new(self.owner);
        for record in self.load()? {
            store.insert_with_size(record.index, record.dv, record.state_size);
        }
        store.raise_incarnation_floor(self.incarnation_floor()?);
        Ok(store)
    }

    /// Synchronizes disk with an in-memory store: persists checkpoints the
    /// disk lacks, removes checkpoints the store no longer holds. Called
    /// after each middleware event (the reports say when something
    /// changed).
    ///
    /// Returns `(persisted, removed)` counts.
    ///
    /// # Errors
    ///
    /// I/O errors along either path.
    pub fn sync(&self, store: &CheckpointStore) -> Result<(usize, usize)> {
        self.persist_incarnation_floor(store.incarnation_floor())?;
        let on_disk: BTreeSet<CheckpointIndex> = self.indices()?.into_iter().collect();
        let in_memory: BTreeSet<CheckpointIndex> = store.indices().collect();
        let mut persisted = 0;
        for &index in in_memory.difference(&on_disk) {
            let dv = store.dv(index).expect("index from the store");
            self.persist(index, dv, 0)?;
            persisted += 1;
        }
        let mut removed = 0;
        for &index in on_disk.difference(&in_memory) {
            self.remove(index)?;
            removed += 1;
        }
        Ok((persisted, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rdt-storage-test-{}-{tag}-{seq}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dv(raw: Vec<usize>) -> DependencyVector {
        DependencyVector::from_raw(raw)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    #[test]
    fn persist_survives_reopen() {
        let dir = scratch("reopen");
        let owner = ProcessId::new(1);
        {
            let store = DurableStore::open(&dir, owner).unwrap();
            store.persist(idx(0), &dv(vec![0, 0]), 10).unwrap();
            store.persist(idx(1), &dv(vec![2, 1]), 20).unwrap();
        } // "crash"
        let store = DurableStore::open(&dir, owner).unwrap();
        let records = store.load().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].dv, dv(vec![2, 1]));
        assert_eq!(records[1].state_size, 20);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rebuild_produces_an_equivalent_checkpoint_store() {
        let dir = scratch("rebuild");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        durable.persist(idx(3), &dv(vec![3, 5]), 7).unwrap();
        durable.persist(idx(1), &dv(vec![1, 0]), 9).unwrap();
        let store = durable.rebuild().unwrap();
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(1), idx(3)]);
        assert_eq!(store.dv(idx(3)).unwrap(), &dv(vec![3, 5]));
        assert_eq!(store.bytes(), 16);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let dir = scratch("remove");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        durable.remove(idx(0)).unwrap();
        durable.remove(idx(0)).unwrap(); // second time: no error
        assert!(durable.indices().unwrap().is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_fails_the_load() {
        let dir = scratch("corrupt");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        fs::write(dir.join("ckpt_0.bin"), b"garbage").unwrap();
        assert!(durable.load().is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mislabeled_record_is_rejected() {
        let dir = scratch("mislabel");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        // A valid record, but under the wrong file name.
        fs::rename(dir.join("ckpt_0.bin"), dir.join("ckpt_5.bin")).unwrap();
        assert!(matches!(durable.load(), Err(Error::Corrupt(_))));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn alien_files_are_reported() {
        let dir = scratch("alien");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        assert!(matches!(durable.indices(), Err(Error::UnrecognizedFile(_))));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn leftover_temp_files_are_ignored() {
        let dir = scratch("tmp");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        // Simulate a crash between write and rename.
        fs::write(dir.join(".ckpt_1.tmp"), b"half-written").unwrap();
        assert_eq!(durable.indices().unwrap(), vec![idx(0)]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sync_mirrors_an_in_memory_store() {
        let dir = scratch("sync");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        let mut store = CheckpointStore::new(owner);
        store.insert(idx(0), dv(vec![0, 0]));
        store.insert(idx(1), dv(vec![1, 2]));
        assert_eq!(durable.sync(&store).unwrap(), (2, 0));
        store.remove(idx(0)).unwrap();
        store.insert(idx(2), dv(vec![2, 2]));
        assert_eq!(durable.sync(&store).unwrap(), (1, 1));
        let rebuilt = durable.rebuild().unwrap();
        assert_eq!(
            rebuilt.indices().collect::<Vec<_>>(),
            store.indices().collect::<Vec<_>>()
        );
        fs::remove_dir_all(dir).unwrap();
    }
}
