//! A per-process checkpoint directory that survives crashes.
//!
//! One file per stable checkpoint (`ckpt_<γ>.bin`, the [`codec`] format),
//! written atomically (temp file + fsync + rename + parent-directory
//! fsync) so a crash mid-write never leaves a half-checkpoint that could
//! be restored, and a crash right after the rename cannot lose it either.
//! This is the "stable storage persists through failures" of the paper's
//! Section 2, made literal — and made testable: every filesystem call goes
//! through a [`StorageBackend`], so the fault injector in
//! [`backend`](crate::backend) can crash, tear, or corrupt any single
//! operation deterministically.
//!
//! Alongside the checkpoints lives the **incarnation log**: the highest
//! incarnation the owner ever opened. Rollbacks bump the incarnation
//! without storing a checkpoint, so a restart that read only the
//! checkpoint files could resume at an incarnation the dead execution
//! already used and propagated — aliasing the very knowledge incarnation
//! numbers exist to disambiguate. Because reusing an incarnation is never
//! safe, the log keeps hard-error semantics (an unreadable log fails the
//! restart) but is **double-slotted** (`incarnation_a.bin` /
//! `incarnation_b.bin`, each checksummed): the slots are written one after
//! the other, so a torn write can corrupt at most the slot being written
//! and the other still carries an acknowledged value. Reads take the
//! maximum over the valid slots (plus the legacy 4-byte
//! `incarnation.bin`, still decoded for old directories).
//!
//! Restart is **lenient** where that is safe: [`DurableStore::rebuild`]
//! quarantines checkpoint files that fail validation (renamed to
//! `*.quarantined`, counted in the [`RestartReport`]) and restores from
//! the remaining intact records, and unrecognized alien files are skipped
//! and counted instead of failing the restart. Transient `EIO`/`ENOSPC`
//! style failures are absorbed by a bounded retry-with-backoff path;
//! exhaustion surfaces as [`Error::Transient`]. Every absorbed retry is
//! reported as a structured `transient_retry` info event through the
//! [`rdt_obs`] sink (exhaustion as a `transient_exhausted` warning), and
//! when profiling is on (see [`DurableStore::set_profiling`]) each
//! backend operation's latency lands in a `store/*` phase.
//!
//! [`codec`]: crate::codec

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rdt_base::{CheckpointIndex, DependencyVector, Incarnation, ProcessId};
use rdt_core::CheckpointStore;

use crate::backend::{is_transient, StdFs, StorageBackend};
use crate::codec::{decode, encode, fnv1a, Record};
use crate::error::{Error, Result};

/// Magic prefix of an incarnation-log slot.
const INCARNATION_MAGIC: [u8; 4] = *b"RDTI";
/// Bounded retry attempts for transient I/O errors.
const RETRY_ATTEMPTS: u32 = 5;

/// What a restart found on disk: how much was restored, and what had to
/// be set aside to get there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Checkpoint records restored intact.
    pub loaded: usize,
    /// Checkpoint files that failed validation during this restart and
    /// were renamed to `*.quarantined`.
    pub quarantined: usize,
    /// Files in the directory that match no known naming scheme and were
    /// skipped.
    pub skipped_alien: usize,
    /// Transient I/O errors absorbed by the retry path over this store's
    /// lifetime so far.
    pub transient_retries: u64,
}

/// What one directory listing classified.
#[derive(Debug, Default)]
struct DirScan {
    /// Well-formed `ckpt_<γ>.bin` names, ascending.
    checkpoints: BTreeSet<CheckpointIndex>,
    /// Files already quarantined by an earlier restart.
    quarantined: usize,
    /// Names matching no known scheme.
    alien: usize,
}

/// A durable, per-process stable store.
#[derive(Debug)]
pub struct DurableStore {
    owner: ProcessId,
    dir: PathBuf,
    fs: Box<dyn StorageBackend>,
    /// The incarnation floor, cached after the first disk read; all writes
    /// to the log go through this handle, so the cache never goes stale.
    floor: Cell<Option<Incarnation>>,
    /// Transient errors absorbed by the retry path (for reports).
    retries: Cell<u64>,
    /// Per-operation latency phases (`store/write`, `store/fsync`, …);
    /// off unless `RDT_PROFILE` is set or [`set_profiling`] turned it on.
    ///
    /// [`set_profiling`]: Self::set_profiling
    prof: RefCell<rdt_obs::Profiler>,
}

impl DurableStore {
    /// Opens (creating if needed) the checkpoint directory for `owner`,
    /// on the real filesystem.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(dir: impl Into<PathBuf>, owner: ProcessId) -> Result<Self> {
        Self::open_with(dir, owner, Box::new(StdFs))
    }

    /// Opens the checkpoint directory through an explicit backend — the
    /// entry point for fault injection.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        owner: ProcessId,
        fs: Box<dyn StorageBackend>,
    ) -> Result<Self> {
        let dir = dir.into();
        let store = Self {
            owner,
            dir,
            fs,
            floor: Cell::new(None),
            retries: Cell::new(0),
            prof: RefCell::new(rdt_obs::Profiler::new(rdt_obs::profile::env_enabled())),
        };
        store.with_retry("store/create_dir", || store.fs.create_dir_all(&store.dir))?;
        Ok(store)
    }

    /// Enables (or disables) per-operation latency profiling: every
    /// backend call records into a `store/*` phase (`store/write`,
    /// `store/fsync`, `store/fsync_dir`, `store/rename`, `store/read`,
    /// `store/list`, `store/remove`, `store/create_dir`), and absorbed
    /// transient retries count under the `store/transient_retries`
    /// counter. Replaces any previously accumulated timings. Latencies
    /// include time spent inside the bounded retry loop, backoff sleeps
    /// included — a retried fsync *is* that slow from the caller's seat.
    pub fn set_profiling(&self, on: bool) {
        *self.prof.borrow_mut() = rdt_obs::Profiler::new(on);
    }

    /// A snapshot of the accumulated I/O timings (`Some` iff profiling
    /// is on).
    pub fn profile(&self) -> Option<rdt_obs::ProfileReport> {
        self.prof.borrow().report().cloned()
    }

    /// Removes and returns the accumulated I/O timings, leaving
    /// profiling in its current on/off state.
    pub fn take_profile(&self) -> Option<rdt_obs::ProfileReport> {
        let on = self.prof.borrow().enabled();
        self.prof.replace(rdt_obs::Profiler::new(on)).into_report()
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Transient I/O errors absorbed by the bounded retry path so far.
    pub fn transient_retries(&self) -> u64 {
        self.retries.get()
    }

    fn path_for(&self, index: CheckpointIndex) -> PathBuf {
        self.dir.join(format!("ckpt_{}.bin", index.value()))
    }

    /// Runs one backend operation under the bounded retry-with-backoff
    /// policy: transient errors (see [`is_transient`]) are retried up to
    /// [`RETRY_ATTEMPTS`] times with escalating micro-sleeps; anything
    /// else is permanent and returned immediately. `phase` names the
    /// operation for the latency profile and the structured retry events
    /// (info per absorbed retry, warn on exhaustion).
    fn with_retry<T>(
        &self,
        phase: &'static str,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> Result<T> {
        let t = self.prof.borrow().start();
        let out = self.retry_loop(phase, &mut op);
        self.prof.borrow_mut().stop(phase, t);
        out
    }

    fn retry_loop<T>(
        &self,
        phase: &'static str,
        op: &mut impl FnMut() -> io::Result<T>,
    ) -> Result<T> {
        let mut delay = Duration::from_micros(100);
        let mut last = None;
        for attempt in 0..RETRY_ATTEMPTS {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) => {
                    self.retries.set(self.retries.get() + 1);
                    self.prof.borrow_mut().add("store/transient_retries", 1);
                    rdt_obs::info("rdt_storage::durable", "transient_retry")
                        .message(&e)
                        .str("op", phase)
                        .str("process", self.owner)
                        .u64("attempt", u64::from(attempt + 1))
                        .emit();
                    last = Some(e);
                    if attempt + 1 < RETRY_ATTEMPTS {
                        std::thread::sleep(delay);
                        delay *= 2;
                    }
                }
                Err(e) => return Err(Error::Io(e)),
            }
        }
        let source = last.expect("loop exits early unless a transient error occurred");
        rdt_obs::warn("rdt_storage::durable", "transient_exhausted")
            .message(&source)
            .str("op", phase)
            .str("process", self.owner)
            .u64("attempts", u64::from(RETRY_ATTEMPTS))
            .emit();
        Err(Error::Transient {
            source,
            attempts: RETRY_ATTEMPTS,
        })
    }

    /// Reads a whole file, treating "not found" as `None`.
    fn read_opt(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match self.with_retry("store/read", || self.fs.read(path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(Error::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Writes `bytes` to `name` with the full atomic-replace discipline:
    /// temp file, fsync, rename, parent-directory fsync. The final fsync
    /// is what actually commits the rename — without it a crash can roll
    /// the directory entry back to the old state (the lost-rename image).
    fn atomic_write(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let target = self.dir.join(name);
        self.with_retry("store/write", || self.fs.write(&tmp, bytes))?;
        self.with_retry("store/fsync", || self.fs.fsync(&tmp))?;
        self.with_retry("store/rename", || self.fs.rename(&tmp, &target))?;
        self.with_retry("store/fsync_dir", || self.fs.fsync_dir(&self.dir))?;
        Ok(())
    }

    /// Encodes one incarnation-log slot: magic, value, FNV-1a checksum.
    fn encode_incarnation(v: Incarnation) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..4].copy_from_slice(&INCARNATION_MAGIC);
        out[4..8].copy_from_slice(&v.value().to_le_bytes());
        let check = fnv1a(&out[..8]);
        out[8..16].copy_from_slice(&check.to_le_bytes());
        out
    }

    /// Decodes one slot; `None` if torn or corrupt (the *other* slot still
    /// carries an acknowledged value).
    fn decode_incarnation(bytes: &[u8]) -> Option<Incarnation> {
        let arr: &[u8; 16] = bytes.try_into().ok()?;
        if arr[..4] != INCARNATION_MAGIC {
            return None;
        }
        let check = u64::from_le_bytes(arr[8..16].try_into().expect("len 8"));
        if fnv1a(&arr[..8]) != check {
            return None;
        }
        let value = u32::from_le_bytes(arr[4..8].try_into().expect("len 4"));
        Some(Incarnation::new(value))
    }

    /// The incarnation log on disk: the highest incarnation the owner ever
    /// opened, or [`Incarnation::ZERO`] if never written (crash-free
    /// stores). Reads the maximum over the valid slots; the legacy 4-byte
    /// `incarnation.bin` format still decodes.
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::Corrupt`] if log files exist but **none**
    /// decodes — resuming at an unknown incarnation is never safe, so this
    /// is the one restart path that stays a hard error.
    pub fn incarnation_floor(&self) -> Result<Incarnation> {
        if let Some(v) = self.floor.get() {
            return Ok(v);
        }
        let mut present = false;
        let mut best: Option<Incarnation> = None;
        for name in ["incarnation_a.bin", "incarnation_b.bin"] {
            if let Some(bytes) = self.read_opt(&self.dir.join(name))? {
                present = true;
                if let Some(v) = Self::decode_incarnation(&bytes) {
                    best = Some(best.map_or(v, |b| b.max(v)));
                }
            }
        }
        if let Some(bytes) = self.read_opt(&self.dir.join("incarnation.bin"))? {
            present = true;
            if let Ok(arr) = <[u8; 4]>::try_from(bytes.as_slice()) {
                let v = Incarnation::new(u32::from_le_bytes(arr));
                best = Some(best.map_or(v, |b| b.max(v)));
            }
        }
        let floor = match (present, best) {
            (false, _) => Incarnation::ZERO,
            (true, Some(v)) => v,
            (true, None) => return Err(Error::Corrupt("no incarnation-log slot decodes")),
        };
        self.floor.set(Some(floor));
        Ok(floor)
    }

    /// Persists the incarnation log. Monotone: never lowers the on-disk
    /// value. Both slots are written in sequence, each with the full
    /// atomic-replace discipline, so a crash tears at most the slot being
    /// written and the maximum over valid slots never lags a value that
    /// was acknowledged to the caller.
    ///
    /// # Errors
    ///
    /// I/O errors along the write path.
    pub fn persist_incarnation_floor(&self, v: Incarnation) -> Result<()> {
        if v <= self.incarnation_floor()? {
            return Ok(());
        }
        let bytes = Self::encode_incarnation(v);
        self.atomic_write("incarnation_a.bin", &bytes)?;
        self.atomic_write("incarnation_b.bin", &bytes)?;
        self.floor.set(Some(v));
        Ok(())
    }

    /// Persists one checkpoint atomically: temp file, fsync, rename,
    /// parent-directory fsync.
    ///
    /// # Errors
    ///
    /// I/O errors anywhere along the write path.
    pub fn persist(
        &self,
        index: CheckpointIndex,
        dv: &DependencyVector,
        state_size: usize,
    ) -> Result<()> {
        let record = Record {
            owner: self.owner,
            index,
            dv: dv.clone(),
            state_size,
        };
        let bytes = encode(&record);
        self.atomic_write(&format!("ckpt_{}.bin", index.value()), &bytes)
    }

    /// Eliminates one checkpoint from disk. Missing files are fine, and
    /// the removal is not followed by a directory fsync: a crash may
    /// resurrect the file, but an eliminated checkpoint is Theorem-1
    /// obsolete — a strictly newer dominating checkpoint exists on disk,
    /// so the newest-first recovery scan never restores the revenant and
    /// the next sync removes it again.
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found".
    pub fn remove(&self, index: CheckpointIndex) -> Result<()> {
        let path = self.path_for(index);
        match self.with_retry("store/remove", || self.fs.remove(&path)) {
            Ok(()) => Ok(()),
            Err(Error::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Classifies every name in the directory.
    fn scan(&self) -> Result<DirScan> {
        let mut out = DirScan::default();
        for name in self.with_retry("store/list", || self.fs.list(&self.dir))? {
            if name.starts_with('.') {
                continue; // incomplete temp file from a crash: ignored
            }
            if name == "incarnation.bin"
                || name == "incarnation_a.bin"
                || name == "incarnation_b.bin"
            {
                continue; // the incarnation log is not a checkpoint
            }
            if name.ends_with(".quarantined") {
                out.quarantined += 1;
                continue; // set aside by an earlier restart
            }
            match name
                .strip_prefix("ckpt_")
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|num| num.parse::<usize>().ok())
            {
                Some(index) => {
                    out.checkpoints.insert(CheckpointIndex::new(index));
                }
                None => out.alien += 1,
            }
        }
        Ok(out)
    }

    /// The checkpoint indices currently on disk, ascending. Files that
    /// match no known naming scheme are skipped (they are counted in the
    /// [`RestartReport`] of a restart), never an error: a stray file must
    /// not brick a restart.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn indices(&self) -> Result<Vec<CheckpointIndex>> {
        Ok(self.scan()?.checkpoints.into_iter().collect())
    }

    /// Loads and validates every checkpoint record, ascending by index.
    /// Strict: any invalid record fails the whole load. Restart paths
    /// should prefer [`rebuild`](Self::rebuild), which quarantines instead.
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::Corrupt`] if any record fails validation.
    pub fn load(&self) -> Result<Vec<Record>> {
        self.indices()?
            .into_iter()
            .map(|index| {
                let path = self.path_for(index);
                let bytes = self.with_retry("store/read", || self.fs.read(&path))?;
                let record = decode(&bytes)?;
                if record.owner != self.owner || record.index != index {
                    return Err(Error::Corrupt("record does not match its file name"));
                }
                Ok(record)
            })
            .collect()
    }

    /// Moves one checkpoint file out of the restorable set.
    fn quarantine(&self, index: CheckpointIndex) -> Result<()> {
        let from = self.path_for(index);
        let to = self
            .dir
            .join(format!("ckpt_{}.bin.quarantined", index.value()));
        self.with_retry("store/rename", || self.fs.rename(&from, &to))?;
        self.with_retry("store/fsync_dir", || self.fs.fsync_dir(&self.dir))?;
        Ok(())
    }

    /// Rebuilds an in-memory [`CheckpointStore`] from disk — the first step
    /// of a process restart — and reports what it found. Lenient:
    /// checkpoint files that fail validation (torn, bit-flipped,
    /// mislabeled) are renamed to `*.quarantined` and the store is rebuilt
    /// from the remaining intact records; alien files are skipped and
    /// counted.
    ///
    /// # Errors
    ///
    /// I/O errors; [`Error::Corrupt`] if checkpoint files exist but **all**
    /// fail validation (there is no intact state to restore from), or if
    /// the incarnation log is unreadable (see
    /// [`incarnation_floor`](Self::incarnation_floor)).
    pub fn rebuild_reported(&self) -> Result<(CheckpointStore, RestartReport)> {
        let scan = self.scan()?;
        let had_files = !scan.checkpoints.is_empty();
        let mut report = RestartReport {
            skipped_alien: scan.alien,
            ..RestartReport::default()
        };
        let mut store = CheckpointStore::new(self.owner);
        for index in scan.checkpoints {
            let path = self.path_for(index);
            let Some(bytes) = self.read_opt(&path)? else {
                continue; // listed then vanished: a racing cleanup
            };
            match decode(&bytes) {
                Ok(record) if record.owner == self.owner && record.index == index => {
                    store.insert_with_size(index, record.dv, record.state_size);
                    report.loaded += 1;
                }
                _ => {
                    self.quarantine(index)?;
                    report.quarantined += 1;
                }
            }
        }
        if had_files && report.loaded == 0 {
            return Err(Error::Corrupt("every checkpoint file failed validation"));
        }
        store.raise_incarnation_floor(self.incarnation_floor()?);
        report.transient_retries = self.retries.get();
        Ok((store, report))
    }

    /// Rebuilds an in-memory [`CheckpointStore`] from disk, discarding the
    /// [`RestartReport`].
    ///
    /// # Errors
    ///
    /// As for [`rebuild_reported`](Self::rebuild_reported).
    pub fn rebuild(&self) -> Result<CheckpointStore> {
        self.rebuild_reported().map(|(store, _)| store)
    }

    /// Synchronizes disk with an in-memory store: persists checkpoints the
    /// disk lacks, removes checkpoints the store no longer holds. Called
    /// after each middleware event (the reports say when something
    /// changed).
    ///
    /// Returns `(persisted, removed)` counts.
    ///
    /// # Errors
    ///
    /// I/O errors along either path.
    pub fn sync(&self, store: &CheckpointStore) -> Result<(usize, usize)> {
        self.persist_incarnation_floor(store.incarnation_floor())?;
        let on_disk: BTreeSet<CheckpointIndex> = self.indices()?.into_iter().collect();
        let in_memory: BTreeSet<CheckpointIndex> = store.indices().collect();
        let mut persisted = 0;
        for &index in in_memory.difference(&on_disk) {
            let dv = store.dv(index).expect("index from the store");
            self.persist(index, dv, 0)?;
            persisted += 1;
        }
        let mut removed = 0;
        for &index in on_disk.difference(&in_memory) {
            self.remove(index)?;
            removed += 1;
        }
        Ok((persisted, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultFs, FaultKind, FaultPlan};
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rdt-storage-test-{}-{tag}-{seq}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dv(raw: Vec<usize>) -> DependencyVector {
        DependencyVector::from_raw(raw)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    #[test]
    fn persist_survives_reopen() {
        let dir = scratch("reopen");
        let owner = ProcessId::new(1);
        {
            let store = DurableStore::open(&dir, owner).unwrap();
            store.persist(idx(0), &dv(vec![0, 0]), 10).unwrap();
            store.persist(idx(1), &dv(vec![2, 1]), 20).unwrap();
        } // "crash"
        let store = DurableStore::open(&dir, owner).unwrap();
        let records = store.load().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].dv, dv(vec![2, 1]));
        assert_eq!(records[1].state_size, 20);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rebuild_produces_an_equivalent_checkpoint_store() {
        let dir = scratch("rebuild");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        durable.persist(idx(3), &dv(vec![3, 5]), 7).unwrap();
        durable.persist(idx(1), &dv(vec![1, 0]), 9).unwrap();
        let store = durable.rebuild().unwrap();
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(1), idx(3)]);
        assert_eq!(store.dv(idx(3)).unwrap(), &dv(vec![3, 5]));
        assert_eq!(store.bytes(), 16);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let dir = scratch("remove");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        durable.remove(idx(0)).unwrap();
        durable.remove(idx(0)).unwrap(); // second time: no error
        assert!(durable.indices().unwrap().is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_fails_the_load() {
        let dir = scratch("corrupt");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        fs::write(dir.join("ckpt_0.bin"), b"garbage").unwrap();
        assert!(durable.load().is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mislabeled_record_is_rejected() {
        let dir = scratch("mislabel");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        // A valid record, but under the wrong file name.
        fs::rename(dir.join("ckpt_0.bin"), dir.join("ckpt_5.bin")).unwrap();
        assert!(matches!(durable.load(), Err(Error::Corrupt(_))));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn alien_files_are_skipped_and_counted() {
        let dir = scratch("alien");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        // A stray file must not brick the restart.
        assert_eq!(durable.indices().unwrap(), vec![idx(0)]);
        let (store, report) = durable.rebuild_reported().unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(report.skipped_alien, 1);
        assert_eq!(report.loaded, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn leftover_temp_files_are_ignored() {
        let dir = scratch("tmp");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        // Simulate a crash between write and rename.
        fs::write(dir.join(".ckpt_1.tmp"), b"half-written").unwrap();
        assert_eq!(durable.indices().unwrap(), vec![idx(0)]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sync_mirrors_an_in_memory_store() {
        let dir = scratch("sync");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        let mut store = CheckpointStore::new(owner);
        store.insert(idx(0), dv(vec![0, 0]));
        store.insert(idx(1), dv(vec![1, 2]));
        assert_eq!(durable.sync(&store).unwrap(), (2, 0));
        store.remove(idx(0)).unwrap();
        store.insert(idx(2), dv(vec![2, 2]));
        assert_eq!(durable.sync(&store).unwrap(), (1, 1));
        let rebuilt = durable.rebuild().unwrap();
        assert_eq!(
            rebuilt.indices().collect::<Vec<_>>(),
            store.indices().collect::<Vec<_>>()
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_and_the_rest_restored() {
        let dir = scratch("quarantine");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        durable.persist(idx(1), &dv(vec![1]), 0).unwrap();
        durable.persist(idx(2), &dv(vec![2]), 0).unwrap();
        // Tear the newest checkpoint to a prefix.
        let bytes = fs::read(dir.join("ckpt_2.bin")).unwrap();
        fs::write(dir.join("ckpt_2.bin"), &bytes[..bytes.len() / 2]).unwrap();
        let (store, report) = durable.rebuild_reported().unwrap();
        assert_eq!(store.indices().collect::<Vec<_>>(), vec![idx(0), idx(1)]);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.quarantined, 1);
        assert!(dir.join("ckpt_2.bin.quarantined").exists());
        assert!(!dir.join("ckpt_2.bin").exists());
        // The quarantined file stays out of later scans.
        assert_eq!(durable.indices().unwrap(), vec![idx(0), idx(1)]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rebuild_refuses_when_nothing_intact_remains() {
        let dir = scratch("all-bad");
        let durable = DurableStore::open(&dir, ProcessId::new(0)).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        fs::write(dir.join("ckpt_0.bin"), b"garbage").unwrap();
        assert!(matches!(
            durable.rebuild_reported(),
            Err(Error::Corrupt("every checkpoint file failed validation"))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn incarnation_floor_survives_a_torn_slot() {
        let dir = scratch("torn-slot");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        durable
            .persist_incarnation_floor(Incarnation::new(3))
            .unwrap();
        // Tear slot B to a prefix — the crash image of a torn write.
        let bytes = fs::read(dir.join("incarnation_b.bin")).unwrap();
        fs::write(dir.join("incarnation_b.bin"), &bytes[..7]).unwrap();
        let reopened = DurableStore::open(&dir, owner).unwrap();
        assert_eq!(reopened.incarnation_floor().unwrap(), Incarnation::new(3));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn incarnation_floor_hard_fails_when_no_slot_decodes() {
        let dir = scratch("both-torn");
        let owner = ProcessId::new(0);
        let durable = DurableStore::open(&dir, owner).unwrap();
        durable
            .persist_incarnation_floor(Incarnation::new(2))
            .unwrap();
        fs::write(dir.join("incarnation_a.bin"), b"junk").unwrap();
        fs::write(dir.join("incarnation_b.bin"), b"junk").unwrap();
        let reopened = DurableStore::open(&dir, owner).unwrap();
        assert!(matches!(
            reopened.incarnation_floor(),
            Err(Error::Corrupt("no incarnation-log slot decodes"))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn legacy_single_file_incarnation_log_still_decodes() {
        let dir = scratch("legacy");
        let owner = ProcessId::new(0);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("incarnation.bin"), 4u32.to_le_bytes()).unwrap();
        let durable = DurableStore::open(&dir, owner).unwrap();
        assert_eq!(durable.incarnation_floor().unwrap(), Incarnation::new(4));
        // A new write moves the log to the slotted format, monotone.
        durable
            .persist_incarnation_floor(Incarnation::new(5))
            .unwrap();
        let reopened = DurableStore::open(&dir, owner).unwrap();
        assert_eq!(reopened.incarnation_floor().unwrap(), Incarnation::new(5));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn transient_errors_are_absorbed_by_the_retry_path() {
        let dir = scratch("transient");
        let plan = FaultPlan::none()
            .with_fault(2, FaultKind::TransientEio)
            .with_fault(5, FaultKind::TransientEnospc);
        let durable =
            DurableStore::open_with(&dir, ProcessId::new(0), Box::new(FaultFs::new(plan))).unwrap();
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        durable.persist(idx(1), &dv(vec![1]), 0).unwrap();
        assert_eq!(durable.transient_retries(), 2);
        assert_eq!(durable.indices().unwrap(), vec![idx(0), idx(1)]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn profiling_records_store_phases_and_retry_counter() {
        let dir = scratch("profiled");
        let plan = FaultPlan::none().with_fault(3, FaultKind::TransientEio);
        let durable =
            DurableStore::open_with(&dir, ProcessId::new(0), Box::new(FaultFs::new(plan))).unwrap();
        durable.set_profiling(true);
        durable.persist(idx(0), &dv(vec![0]), 0).unwrap();
        let report = durable.profile().expect("profiling is on");
        for phase in [
            "store/write",
            "store/fsync",
            "store/rename",
            "store/fsync_dir",
        ] {
            assert_eq!(report.phase(phase).map(|p| p.count), Some(1), "{phase}");
        }
        assert_eq!(report.counters.get("store/transient_retries"), Some(&1));
        // take_profile drains but keeps profiling on.
        assert!(durable.take_profile().is_some());
        let report = durable.profile().expect("still on");
        assert!(report.phase("store/write").is_none());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn injected_crash_surfaces_as_a_permanent_error() {
        let dir = scratch("inj-crash");
        let durable = DurableStore::open_with(
            &dir,
            ProcessId::new(0),
            Box::new(FaultFs::new(FaultPlan::crash_after(3))),
        )
        .unwrap();
        // open consumed 1 op; the persist (4 ops) trips the crash point.
        let err = durable.persist(idx(0), &dv(vec![0]), 0).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "crash errors are permanent");
        let _ = fs::remove_dir_all(dir);
    }
}
