//! CrashMonkey-style crash-point torture for the durable store.
//!
//! The stable-storage contract of the paper's Section 2 is an *assumption*
//! there; here it has to be earned. This module proves it mechanically:
//!
//! 1. A deterministic scripted workload (checkpoints, sends, deliveries
//!    over `n` middleware stacks, each mirrored through the durable store
//!    with a [`FaultFs`] backend) runs once fault-free as the **reference
//!    run**, recording the replayable trace and, per event, how many
//!    backend operations it consumed and which checkpoint (if any) it made
//!    durable.
//! 2. For **every backend operation** `K` (optionally sampled), the same
//!    script re-runs against a plan that stops the backend dead after `K`
//!    operations. Every process then restarts from the surviving files
//!    alone, a full recovery session runs (all processes faulty), and the
//!    online recovery line is compared against the offline
//!    [`rdt_ccp`] oracle replaying the reference-trace prefix that the
//!    surviving disk state actually witnesses.
//! 3. Separately, seeded **fault plans** (torn writes, bit flips, lost
//!    renames, transient `EIO`/`ENOSPC`, with or without a crash point)
//!    exercise graceful degradation: the restart must quarantine what is
//!    corrupt, restore from the intact remainder, recover, and keep
//!    executing.
//!
//! The oracle cut is chosen adaptively. One event's mirror sync persists
//! its (at most one) new checkpoint *before* any removals, so a crash
//! image is either exactly the state after the previous event — the new
//! checkpoint is not durable — or the state after the partial event plus
//! only Theorem-1-obsolete leftovers, which a newest-first Lemma-1 scan
//! never restores. Whether the partial event's checkpoint survived on
//! disk therefore decides which trace prefix the oracle replays; the
//! online line must match it exactly.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rdt_base::{Payload, ProcessId, TraceEvent};
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};
use rdt_recovery::{FaultySet, RecoveryManager};
use rdt_workloads::{Script, ScriptOp};

use crate::backend::{FaultFs, FaultKind, FaultPlan};
use crate::durable::{DurableStore, RestartReport};
use crate::error::{Error, Result};

/// Configuration of one torture session.
#[derive(Debug, Clone)]
pub struct TortureOptions {
    /// Number of processes.
    pub n: usize,
    /// Number of scripted events.
    pub events: usize,
    /// Seed for script and fault-plan generation.
    pub seed: u64,
    /// Checkpointing protocol.
    pub protocol: ProtocolKind,
    /// Garbage collector.
    pub gc: GcKind,
    /// Crash-point cap: when the script consumes more backend operations
    /// than this, the sweep samples evenly instead of enumerating all.
    /// `0` disables the crash-point sweep.
    pub max_crash_points: usize,
    /// Number of seeded corruption fault plans to run. `0` disables them.
    pub fault_plans: usize,
    /// Scratch directory; a unique subdirectory is used per run. Defaults
    /// to the system temp dir.
    pub root: Option<PathBuf>,
}

impl Default for TortureOptions {
    fn default() -> Self {
        Self {
            n: 4,
            events: 60,
            seed: 1,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            max_crash_points: 200,
            fault_plans: 16,
            root: None,
        }
    }
}

/// The aggregated [`RestartReport`](crate::RestartReport) of one probe's
/// all-process restart, tagged with the crash point that produced it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashPointRestart {
    /// The backend operation count the crash plan fired after.
    pub crash_point: u64,
    /// Checkpoint records restored intact, summed over processes.
    pub loaded: usize,
    /// Checkpoint files quarantined during this restart.
    pub quarantined: usize,
    /// Unrecognized files skipped during this restart.
    pub skipped_alien: usize,
    /// Transient I/O errors absorbed by the restart's retry paths.
    pub transient_retries: u64,
}

/// What a torture session found.
#[derive(Debug, Clone, Default)]
pub struct TortureReport {
    /// Backend operations one fault-free run of the script consumes.
    pub total_ops: u64,
    /// Crash points actually exercised.
    pub crash_points_tested: usize,
    /// Corruption fault plans actually exercised.
    pub fault_plans_tested: usize,
    /// Checkpoint files quarantined across all restarts.
    pub quarantined: usize,
    /// Transient errors absorbed by the retry path across all runs.
    pub transient_retries: u64,
    /// Per-crash-point restart counters, in probe order.
    pub restarts: Vec<CrashPointRestart>,
    /// Human-readable descriptions of every failed check. Empty means the
    /// storage layer survived everything thrown at it.
    pub failures: Vec<String>,
}

impl TortureReport {
    /// Whether every crash point and fault plan passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A splitmix64-style generator: deterministic, seedable, no external deps.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(2).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Generates the scripted workload: ~30% basic checkpoints, ~45% sends,
/// ~25% deliveries of the oldest pending send (falling back to a
/// checkpoint when nothing is in flight).
fn generate_script(n: usize, events: usize, seed: u64) -> Script {
    let mut rng = Lcg::new(seed);
    let mut script = Script::new();
    let mut pending: Vec<usize> = Vec::new();
    for _ in 0..events {
        let roll = rng.below(100);
        if roll < 30 {
            script.checkpoint(ProcessId::new(rng.below(n as u64) as usize));
        } else if roll < 75 || pending.is_empty() {
            let from = rng.below(n as u64) as usize;
            let to = (from + 1 + rng.below(n as u64 - 1) as usize) % n;
            pending.push(script.send(ProcessId::new(from), ProcessId::new(to)));
        } else {
            script.deliver(pending.remove(0));
        }
    }
    script
}

/// Per-event bookkeeping from the reference run.
#[derive(Debug, Clone, Copy)]
struct EventMeta {
    /// Cumulative backend operations once this event's sync completed.
    ops_after: u64,
    /// Trace length once this event's trace entries were appended.
    trace_len_after: usize,
    /// The checkpoint this event made durable, if any.
    inserted: Option<(usize, usize)>,
}

/// Where each send sits in the event sequence, for prefix `Drop` marking.
#[derive(Debug, Clone, Copy)]
struct SendSpan {
    id: rdt_base::MessageId,
    sent_at: usize,
    delivered_at: Option<usize>,
}

/// Everything the oracle needs about the fault-free execution.
struct Reference {
    trace: Vec<TraceEvent>,
    meta: Vec<EventMeta>,
    sends: Vec<SendSpan>,
    create_ops: u64,
    total_ops: u64,
}

/// Trace entries one event appended, plus the checkpoint it made durable
/// as `(process index, checkpoint index)`, if any.
type StepOutcome = (Vec<TraceEvent>, Option<(usize, usize)>);

/// The live world one run executes in: middlewares plus durable mirrors
/// on a shared fault-injecting backend.
struct World {
    mws: Vec<Middleware>,
    disks: Vec<DurableStore>,
    backend: FaultFs,
}

impl World {
    fn create(root: &Path, opts: &TortureOptions, plan: FaultPlan) -> Result<Self> {
        let backend = FaultFs::new(plan);
        let mws: Vec<Middleware> = (0..opts.n)
            .map(|i| Middleware::new(ProcessId::new(i), opts.n, opts.protocol, opts.gc))
            .collect();
        let mut disks = Vec::with_capacity(opts.n);
        for (i, mw) in mws.iter().enumerate() {
            let disk = DurableStore::open_with(
                root.join(format!("p{i}")),
                ProcessId::new(i),
                Box::new(backend.clone()),
            )?;
            disk.sync(mw.store())?;
            disks.push(disk);
        }
        Ok(Self {
            mws,
            disks,
            backend,
        })
    }

    /// Executes one script event and syncs the touched process's mirror.
    /// Returns the trace entries it appended and the checkpoint it made
    /// durable, if any.
    fn step(
        &mut self,
        op: ScriptOp,
        inflight: &mut Vec<Option<(rdt_base::MessageId, ProcessId, Piggyback)>>,
    ) -> Result<StepOutcome> {
        let mut events = Vec::with_capacity(2);
        let mut inserted = None;
        let touched = match op {
            ScriptOp::Checkpoint(p) => {
                let report = self.mws[p.index()].basic_checkpoint().map_err(other)?;
                events.push(TraceEvent::Checkpoint {
                    process: p,
                    forced: false,
                });
                inserted = Some((p.index(), report.stored.value()));
                p
            }
            ScriptOp::Send { from, to } => {
                let pb = self.mws[from.index()].piggyback();
                let (msg, forced) = self.mws[from.index()].send_reported(to, Payload::empty());
                events.push(TraceEvent::Send {
                    id: msg.meta.id,
                    to,
                });
                if let Some(report) = forced {
                    events.push(TraceEvent::Checkpoint {
                        process: from,
                        forced: true,
                    });
                    inserted = Some((from.index(), report.stored.value()));
                }
                inflight.push(Some((msg.meta.id, to, pb)));
                from
            }
            ScriptOp::Deliver { send_ordinal } => {
                let (id, to, pb) = inflight[send_ordinal]
                    .take()
                    .expect("script delivers each send at most once");
                let report = self.mws[to.index()].receive_piggyback(&pb).map_err(other)?;
                if let Some(forced) = report.forced {
                    events.push(TraceEvent::Checkpoint {
                        process: to,
                        forced: true,
                    });
                    inserted = Some((to.index(), forced.value()));
                }
                events.push(TraceEvent::Deliver { id });
                to
            }
        };
        self.disks[touched.index()].sync(self.mws[touched.index()].store())?;
        Ok((events, inserted))
    }
}

fn other(e: rdt_base::Error) -> Error {
    Error::Io(std::io::Error::other(e.to_string()))
}

/// Runs the script fault-free (but op-counted) and records everything the
/// crash-point oracle needs.
fn reference_run(root: &Path, opts: &TortureOptions, script: &Script) -> Result<Reference> {
    let mut world = World::create(root, opts, FaultPlan::none())?;
    let create_ops = world.backend.ops_executed();
    let mut trace = Vec::new();
    let mut meta = Vec::with_capacity(script.len());
    let mut sends = Vec::with_capacity(script.send_count());
    let mut inflight = Vec::with_capacity(script.send_count());
    for (j, &op) in script.ops().iter().enumerate() {
        match op {
            ScriptOp::Send { .. } => {}
            ScriptOp::Deliver { send_ordinal } => {
                let span: &mut SendSpan = &mut sends[send_ordinal];
                span.delivered_at = Some(j);
            }
            ScriptOp::Checkpoint(_) => {}
        }
        let (events, inserted) = world.step(op, &mut inflight)?;
        if let ScriptOp::Send { .. } = op {
            let id = events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Send { id, .. } => Some(*id),
                    _ => None,
                })
                .expect("send events carry an id");
            sends.push(SendSpan {
                id,
                sent_at: j,
                delivered_at: None,
            });
        }
        trace.extend(events);
        meta.push(EventMeta {
            ops_after: world.backend.ops_executed(),
            trace_len_after: trace.len(),
            inserted,
        });
    }
    let total_ops = world.backend.ops_executed();
    Ok(Reference {
        trace,
        meta,
        sends,
        create_ops,
        total_ops,
    })
}

/// Replays the script until the backend crashes (or the script ends).
/// The middleware state is then discarded — only the files survive.
fn run_until_crash(
    root: &Path,
    opts: &TortureOptions,
    script: &Script,
    plan: FaultPlan,
) -> Result<(FaultFs, u64)> {
    let mut world = World::create(root, opts, plan)?;
    let mut inflight = Vec::with_capacity(script.send_count());
    for &op in script.ops() {
        match world.step(op, &mut inflight) {
            Ok(_) => {}
            Err(_) if world.backend.has_crashed() => break,
            Err(e) => return Err(e),
        }
    }
    let retries = world.disks.iter().map(|d| d.transient_retries()).sum();
    Ok((world.backend, retries))
}

/// Restarts every process from its surviving files. Returns the rebuilt
/// (crashed) middlewares, their stores' disk handles, and the
/// [`RestartReport`] counters summed over all processes.
fn restart_all(
    root: &Path,
    opts: &TortureOptions,
) -> Result<(Vec<Middleware>, Vec<DurableStore>, RestartReport)> {
    let mut mws = Vec::with_capacity(opts.n);
    let mut disks = Vec::with_capacity(opts.n);
    let mut total = RestartReport::default();
    for i in 0..opts.n {
        let disk = DurableStore::open(root.join(format!("p{i}")), ProcessId::new(i))?;
        let (store, report) = disk.rebuild_reported()?;
        total.loaded += report.loaded;
        total.quarantined += report.quarantined;
        total.skipped_alien += report.skipped_alien;
        total.transient_retries += report.transient_retries;
        if store.is_empty() {
            // `Middleware::from_store` treats an empty store as a caller
            // bug and panics; surface the torn-disk image as a typed
            // error the probes can report instead.
            return Err(Error::Corrupt(
                "restart found no checkpoint to anchor recovery",
            ));
        }
        mws.push(Middleware::from_store(
            ProcessId::new(i),
            opts.n,
            opts.protocol,
            opts.gc,
            store,
        ));
        disks.push(disk);
    }
    Ok((mws, disks, total))
}

/// The offline oracle line for the reference-trace prefix of `cut`
/// completed events, with unresolved sends dropped.
fn oracle_line(n: usize, reference: &Reference, cut: usize, faulty: &FaultySet) -> Vec<usize> {
    let trace_len = if cut == 0 {
        0
    } else {
        reference.meta[cut - 1].trace_len_after
    };
    let mut prefix: Vec<TraceEvent> = reference.trace[..trace_len].to_vec();
    for span in &reference.sends {
        if span.sent_at < cut && span.delivered_at.is_none_or(|d| d >= cut) {
            prefix.push(TraceEvent::Drop { id: span.id });
        }
    }
    let ccp = CcpBuilder::from_trace(n, &prefix)
        .expect("reference prefixes replay")
        .build();
    ccp.recovery_line(faulty).to_raw()
}

/// One crash-point probe: run to the injected crash, restart, recover,
/// compare the online line against the adaptive-cut oracle.
fn probe_crash_point(
    root: &Path,
    opts: &TortureOptions,
    script: &Script,
    reference: &Reference,
    k: u64,
    report: &mut TortureReport,
) -> Result<()> {
    let (backend, retries) = run_until_crash(root, opts, script, FaultPlan::crash_after(k))?;
    report.transient_retries += retries;
    if !backend.has_crashed() {
        report
            .failures
            .push(format!("crash point {k}: the plan never fired"));
        return Ok(());
    }
    let (mut mws, disks, restart) = restart_all(root, opts)?;
    report.quarantined += restart.quarantined;
    report.restarts.push(CrashPointRestart {
        crash_point: k,
        loaded: restart.loaded,
        quarantined: restart.quarantined,
        skipped_alien: restart.skipped_alien,
        transient_retries: restart.transient_retries,
    });
    if restart.quarantined != 0 {
        // A pure stop-after-K crash tears nothing; the atomic-write
        // discipline must leave only intact or invisible files.
        report.failures.push(format!(
            "crash point {k}: {} files quarantined by a clean stop",
            restart.quarantined
        ));
    }

    // How many events completed their sync before op K, adjusted by
    // whether the partial event's checkpoint is already durable.
    let mut cut = reference.meta.iter().filter(|m| m.ops_after <= k).count();
    if cut < reference.meta.len() {
        if let Some((p, idx)) = reference.meta[cut].inserted {
            let on_disk = disks[p].indices()?.iter().any(|i| i.value() == idx);
            if on_disk {
                cut += 1;
            }
        }
    }

    let faulty: FaultySet = ProcessId::all(opts.n).collect();
    let offline = oracle_line(opts.n, reference, cut, &faulty);
    let session = match RecoveryManager::new().recover(&mut mws, &faulty) {
        Ok(session) => session,
        Err(e) => {
            report
                .failures
                .push(format!("crash point {k}: recovery failed: {e}"));
            return Ok(());
        }
    };
    let online: Vec<usize> = session.line.iter().map(|c| c.value()).collect();
    if online != offline {
        report.failures.push(format!(
            "crash point {k} (cut {cut}): online line {online:?} != oracle {offline:?}"
        ));
    }
    Ok(())
}

/// One seeded corruption plan: run (crashing or not), restart, recover,
/// and keep executing. Asserts the graceful-degradation contract, not
/// oracle equality — a quarantined checkpoint legitimately shifts the
/// line to an older intact one.
fn probe_fault_plan(
    root: &Path,
    opts: &TortureOptions,
    script: &Script,
    reference: &Reference,
    plan_no: usize,
    report: &mut TortureReport,
) -> Result<()> {
    let mut rng = Lcg::new(opts.seed ^ (0x9e37_79b9 + plan_no as u64));
    let span = reference.total_ops - reference.create_ops;
    let mut plan = FaultPlan::none();
    let kinds = [
        FaultKind::TornWrite,
        FaultKind::BitFlip,
        FaultKind::LostRename,
        FaultKind::TransientEio,
        FaultKind::TransientEnospc,
    ];
    let mut used = BTreeSet::new();
    for f in 0..(2 + rng.below(3)) {
        // Transient faults shift later op indices by one retry each, so
        // spread fault sites out to keep plans from stacking on one op.
        let op = reference.create_ops + rng.below(span);
        if used.iter().any(|&u: &u64| u.abs_diff(op) < 8) {
            continue;
        }
        used.insert(op);
        plan = plan.with_fault(op, kinds[(plan_no + f as usize) % kinds.len()]);
    }
    if rng.below(2) == 0 {
        plan.stop_after = Some(reference.create_ops + rng.below(span));
    }

    let (_backend, retries) = run_until_crash(root, opts, script, plan)?;
    report.transient_retries += retries;
    let (mut mws, _disks, restart) = match restart_all(root, opts) {
        Ok(v) => v,
        Err(e) => {
            report
                .failures
                .push(format!("fault plan {plan_no}: restart failed: {e}"));
            return Ok(());
        }
    };
    report.quarantined += restart.quarantined;
    let faulty: FaultySet = ProcessId::all(opts.n).collect();
    if let Err(e) = RecoveryManager::new().recover(&mut mws, &faulty) {
        report
            .failures
            .push(format!("fault plan {plan_no}: recovery failed: {e}"));
        return Ok(());
    }
    // The system must keep executing from the recovered cut.
    for mw in &mut mws {
        if mw.basic_checkpoint().is_err() {
            report.failures.push(format!(
                "fault plan {plan_no}: {} cannot checkpoint after recovery",
                mw.owner()
            ));
        }
    }
    Ok(())
}

/// Runs a full torture session: the crash-point sweep and the seeded
/// corruption plans.
///
/// # Errors
///
/// Harness-level I/O errors (scratch-directory setup, unexpected
/// non-injected failures). Contract violations are *not* errors — they
/// are collected in [`TortureReport::failures`].
pub fn run_torture(opts: &TortureOptions) -> Result<TortureReport> {
    let root = opts
        .root
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("rdt-torture-{}-{}", std::process::id(), opts.seed));
    let _ = std::fs::remove_dir_all(&root);
    let script = generate_script(opts.n, opts.events, opts.seed);
    let mut report = TortureReport::default();

    let ref_dir = root.join("reference");
    let reference = reference_run(&ref_dir, opts, &script)?;
    report.total_ops = reference.total_ops;

    if opts.max_crash_points > 0 {
        let span = reference.total_ops - reference.create_ops;
        let count = (opts.max_crash_points as u64).min(span);
        let mut probed = BTreeSet::new();
        for i in 0..count {
            // Even sampling over [create_ops, total_ops); enumerates all
            // when the budget covers the span.
            probed.insert(reference.create_ops + i * span / count);
        }
        for k in probed {
            let run_dir = root.join(format!("crash-{k}"));
            probe_crash_point(&run_dir, opts, &script, &reference, k, &mut report)?;
            let _ = std::fs::remove_dir_all(&run_dir);
            report.crash_points_tested += 1;
        }
    }

    for plan_no in 0..opts.fault_plans {
        let run_dir = root.join(format!("fault-{plan_no}"));
        probe_fault_plan(&run_dir, opts, &script, &reference, plan_no, &mut report)?;
        let _ = std::fs::remove_dir_all(&run_dir);
        report.fault_plans_tested += 1;
    }

    let _ = std::fs::remove_dir_all(&root);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let a = generate_script(4, 50, 7);
        let b = generate_script(4, 50, 7);
        assert_eq!(a, b);
        assert_ne!(a, generate_script(4, 50, 8));
    }

    #[test]
    fn every_crash_point_recovers_to_the_oracle_line() {
        let opts = TortureOptions {
            n: 3,
            events: 24,
            seed: 11,
            max_crash_points: 64,
            fault_plans: 0,
            ..TortureOptions::default()
        };
        let report = run_torture(&opts).expect("harness runs");
        assert!(report.crash_points_tested > 0);
        assert!(report.passed(), "failures: {:#?}", report.failures);
        // Every probe reports its restart counters, and every restart
        // recovered at least the n initial checkpoints.
        assert_eq!(report.restarts.len(), report.crash_points_tested);
        assert!(report.restarts.iter().all(|r| r.loaded >= opts.n));
    }

    #[test]
    fn fault_plans_degrade_gracefully() {
        let opts = TortureOptions {
            n: 3,
            events: 24,
            seed: 5,
            max_crash_points: 0,
            fault_plans: 8,
            ..TortureOptions::default()
        };
        let report = run_torture(&opts).expect("harness runs");
        assert_eq!(report.fault_plans_tested, 8);
        assert!(report.passed(), "failures: {:#?}", report.failures);
    }
}
