//! Error type for the durable-storage layer.
//!
//! Errors are split by what the caller should do about them:
//! [`Error::Transient`] means a bounded retry already failed on an error
//! class that often clears (`EIO`, `ENOSPC`, interrupts) and the caller
//! may retry the whole operation later; [`Error::Io`] and
//! [`Error::Corrupt`] are permanent for the operation that raised them.

use std::fmt;
use std::io;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// What can go wrong persisting or loading checkpoints.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem operation failed with a permanent error
    /// (or an error class the retry path does not cover).
    Io(io::Error),
    /// A record failed validation (truncation, bad magic, checksum…).
    Corrupt(&'static str),
    /// A transient filesystem error (`EIO`, `ENOSPC`, interrupt) persisted
    /// through every bounded retry attempt.
    Transient {
        /// The last error observed.
        source: io::Error,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "stable-storage i/o failed: {e}"),
            Error::Corrupt(what) => write!(f, "corrupt checkpoint record: {what}"),
            Error::Transient { source, attempts } => write!(
                f,
                "transient storage error persisted through {attempts} attempts: {source}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Transient { source, .. } => Some(source),
            Error::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let e = Error::Corrupt("bad magic");
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
        let t = Error::Transient {
            source: io::Error::from_raw_os_error(5),
            attempts: 5,
        };
        assert!(t.to_string().starts_with(char::is_lowercase));
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error as _;
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        let t = Error::Transient {
            source: io::Error::from_raw_os_error(28),
            attempts: 3,
        };
        assert!(t.source().is_some());
    }
}
