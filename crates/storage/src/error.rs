//! Error type for the durable-storage layer.

use std::fmt;
use std::io;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// What can go wrong persisting or loading checkpoints.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A record failed validation (truncation, bad magic, checksum…).
    Corrupt(&'static str),
    /// A file in the checkpoint directory does not follow the naming
    /// scheme and cannot be attributed to a checkpoint.
    UnrecognizedFile(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "stable-storage i/o failed: {e}"),
            Error::Corrupt(what) => write!(f, "corrupt checkpoint record: {what}"),
            Error::UnrecognizedFile(name) => {
                write!(f, "unrecognized file in checkpoint directory: {name}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let e = Error::Corrupt("bad magic");
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error as _;
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
