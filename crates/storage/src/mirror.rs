//! A middleware whose stable store is transparently mirrored to disk.
//!
//! [`MirroredMiddleware`] is a thin, error-surfacing shell around a
//! `Middleware<DiskSink>`: the generic middleware itself offers every
//! stable-store mutation to its [`DiskSink`](crate::DiskSink) (commit
//! after checkpoints, receives, GC, rollback; write-ahead of the
//! incarnation before a rollback mutates), so this type no longer owns a
//! delivery-path of its own — it only turns the sink's buffered commit
//! failures back into hard [`Result`]s at each call boundary, which is
//! the contract this crate's callers were built against. The paper's
//! stable-storage model — persists through failures, volatile state lost
//! — then falls out of the filesystem: drop the wrapper (the "crash") and
//! [`MirroredMiddleware::restart`] rebuilds a crashed middleware from the
//! surviving records, ready for an ordinary recovery session.

use std::io;
use std::path::PathBuf;

use rdt_base::{CheckpointIndex, Message, Payload, ProcessId};
use rdt_core::{ControlInfo, GcKind, LastIntervals};
use rdt_protocols::{
    CheckpointReport, Middleware, Piggyback, ProtocolKind, ReceiveReport, RollbackReport,
};

use crate::backend::{StdFs, StorageBackend};
use crate::durable::{DurableStore, RestartReport};
use crate::error::{Error, Result};
use crate::sink::DiskSink;

/// A [`Middleware`] with a write-through durable mirror.
#[derive(Debug)]
pub struct MirroredMiddleware {
    inner: Middleware<DiskSink>,
}

impl MirroredMiddleware {
    /// Creates a fresh process whose stable store mirrors into `dir`
    /// (created if needed). The mandatory initial checkpoint `s^0` is
    /// persisted before this returns.
    ///
    /// # Errors
    ///
    /// I/O errors opening the directory or writing `s^0`.
    pub fn create(
        dir: impl Into<PathBuf>,
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
    ) -> Result<Self> {
        Self::create_with(dir, owner, n, protocol, gc, Box::new(StdFs))
    }

    /// [`create`](Self::create) through an explicit [`StorageBackend`] —
    /// the entry point for fault injection.
    ///
    /// # Errors
    ///
    /// I/O errors opening the directory or writing `s^0`.
    pub fn create_with(
        dir: impl Into<PathBuf>,
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        fs: Box<dyn StorageBackend>,
    ) -> Result<Self> {
        let disk = DurableStore::open_with(dir, owner, fs)?;
        // `with_storage` commits s^0 through the sink before returning.
        let inner = Middleware::with_storage(owner, n, protocol, gc, DiskSink::over(disk));
        let mut this = Self { inner };
        this.drained(())?;
        Ok(this)
    }

    /// Restarts a crashed process from its surviving files. The middleware
    /// comes back crashed; run a recovery session to restore a checkpoint.
    ///
    /// # Errors
    ///
    /// I/O and validation errors reading the records.
    pub fn restart(
        dir: impl Into<PathBuf>,
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
    ) -> Result<Self> {
        Self::restart_with(dir, owner, n, protocol, gc, Box::new(StdFs)).map(|(mw, _)| mw)
    }

    /// [`restart`](Self::restart) through an explicit [`StorageBackend`],
    /// also returning the [`RestartReport`] of the lenient rebuild (how
    /// many records were restored, quarantined, or skipped).
    ///
    /// # Errors
    ///
    /// I/O and validation errors reading the records.
    pub fn restart_with(
        dir: impl Into<PathBuf>,
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        fs: Box<dyn StorageBackend>,
    ) -> Result<(Self, RestartReport)> {
        let disk = DurableStore::open_with(dir, owner, fs)?;
        let (store, report) = disk.rebuild_reported()?;
        Ok((
            Self {
                inner: Middleware::from_store_with(
                    owner,
                    n,
                    protocol,
                    gc,
                    store,
                    DiskSink::over(disk),
                ),
            },
            report,
        ))
    }

    /// The wrapped middleware (read access; mutating it directly would
    /// bypass the error surfacing).
    pub fn middleware(&self) -> &Middleware<DiskSink> {
        &self.inner
    }

    /// The durable mirror.
    pub fn disk(&self) -> &DurableStore {
        self.inner.sink().disk()
    }

    /// Turns the sink's buffered commit failure, if any, into a hard error.
    fn drained<T>(&mut self, value: T) -> Result<T> {
        match self.inner.take_sink_error() {
            None => Ok(value),
            Some(detail) => Err(Error::Io(io::Error::other(detail))),
        }
    }

    /// Mirrored [`Middleware::basic_checkpoint`].
    ///
    /// # Errors
    ///
    /// Middleware errors (crashed process) and mirror I/O errors.
    pub fn basic_checkpoint(&mut self) -> Result<CheckpointReport> {
        let report = self.inner.basic_checkpoint().map_err(other)?;
        self.drained(report)
    }

    /// Mirrored [`Middleware::send`] (the CAS-family post-send checkpoint
    /// is persisted too).
    ///
    /// # Errors
    ///
    /// I/O errors from the mirror.
    pub fn send(&mut self, to: ProcessId, payload: Payload) -> Result<Message> {
        self.send_reported(to, payload).map(|(msg, _)| msg)
    }

    /// Mirrored [`Middleware::send_reported`]: as [`send`](Self::send),
    /// also returning the report of the post-send forced checkpoint when
    /// the protocol demands one.
    ///
    /// # Errors
    ///
    /// I/O errors from the mirror.
    pub fn send_reported(
        &mut self,
        to: ProcessId,
        payload: Payload,
    ) -> Result<(Message, Option<CheckpointReport>)> {
        let out = self.inner.send_reported(to, payload);
        self.drained(out)
    }

    /// Passthrough of [`Middleware::piggyback`] (control-information-only;
    /// stable storage is unchanged, so nothing needs mirroring).
    pub fn piggyback(&mut self) -> Piggyback {
        self.inner.piggyback()
    }

    /// Mirrored [`Middleware::receive`].
    ///
    /// # Errors
    ///
    /// Middleware errors (crashed process) and mirror I/O errors.
    pub fn receive(&mut self, msg: &Message) -> Result<ReceiveReport> {
        let report = self.inner.receive(msg).map_err(other)?;
        self.drained(report)
    }

    /// Mirrored [`Middleware::receive_piggyback`].
    ///
    /// # Errors
    ///
    /// As for [`receive`](Self::receive).
    pub fn receive_piggyback(&mut self, m: &Piggyback) -> Result<ReceiveReport> {
        let report = self.inner.receive_piggyback(m).map_err(other)?;
        self.drained(report)
    }

    /// Mirrored [`Middleware::rollback`], with the Strom/Yemini
    /// **write-ahead incarnation log**: the generic middleware persists
    /// the incarnation the rollback is about to open through
    /// [`Storage::wal_incarnation`](rdt_env::Storage::wal_incarnation)
    /// *before* the in-memory rollback runs, so a machine crash at any
    /// point cannot restart the process into an incarnation number the
    /// aborted execution already used and propagated.
    ///
    /// # Errors
    ///
    /// Middleware errors (unknown target) and mirror I/O errors.
    pub fn rollback(
        &mut self,
        ri: CheckpointIndex,
        li: Option<&LastIntervals>,
    ) -> Result<RollbackReport> {
        let report = self.inner.rollback(ri, li).map_err(|e| match e {
            rdt_base::Error::Storage(detail) => Error::Io(io::Error::other(detail)),
            e => other(e),
        })?;
        self.drained(report)
    }

    /// Mirrored [`Middleware::recovery_info`].
    ///
    /// # Errors
    ///
    /// Mirror I/O errors.
    pub fn recovery_info(&mut self, li: &LastIntervals) -> Result<Vec<CheckpointIndex>> {
        let freed = self.inner.recovery_info(li);
        self.drained(freed)
    }

    /// Mirrored [`Middleware::control`].
    ///
    /// # Errors
    ///
    /// Mirror I/O errors.
    pub fn control(&mut self, info: &ControlInfo) -> Result<Vec<CheckpointIndex>> {
        let freed = self.inner.control(info);
        self.drained(freed)
    }

    /// Crashes the process (volatile only; the mirror keeps its files).
    pub fn crash(&mut self) {
        self.inner.crash();
    }
}

fn other(e: rdt_base::Error) -> crate::Error {
    crate::Error::Io(std::io::Error::other(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rdt-mirror-test-{}-{tag}-{seq}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn create_persists_the_initial_checkpoint() {
        let dir = scratch("init");
        let mw =
            MirroredMiddleware::create(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        assert_eq!(mw.disk().indices().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn every_event_keeps_disk_and_memory_identical() {
        let dir = scratch("events");
        let mut a =
            MirroredMiddleware::create(dir.join("a"), p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc)
                .unwrap();
        let mut b =
            MirroredMiddleware::create(dir.join("b"), p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc)
                .unwrap();
        a.basic_checkpoint().unwrap();
        let m = a.send(p(1), Payload::empty()).unwrap();
        b.receive(&m).unwrap();
        b.basic_checkpoint().unwrap();
        for mw in [&a, &b] {
            assert_eq!(
                mw.disk().indices().unwrap(),
                mw.middleware().store().indices().collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restart_round_trips_through_the_filesystem() {
        let dir = scratch("restart");
        {
            let mut mw =
                MirroredMiddleware::create(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc)
                    .unwrap();
            mw.basic_checkpoint().unwrap();
            mw.basic_checkpoint().unwrap();
        } // crash: everything volatile is gone
        let mw =
            MirroredMiddleware::restart(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        assert!(mw.middleware().is_crashed());
        assert!(!mw.middleware().store().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn crashed_operations_error_without_touching_disk() {
        let dir = scratch("crashed");
        let mut mw =
            MirroredMiddleware::create(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        mw.crash();
        assert!(mw.basic_checkpoint().is_err());
        assert_eq!(mw.disk().indices().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rollback_write_aheads_the_incarnation_log() {
        use rdt_base::Incarnation;
        let dir = scratch("wal");
        let mut mw =
            MirroredMiddleware::create(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        mw.basic_checkpoint().unwrap();
        mw.crash();
        mw.rollback(CheckpointIndex::new(1), None).unwrap();
        assert_eq!(mw.middleware().incarnation(), Incarnation::new(1));
        // Even if every later sync were lost, the log already says 1: a
        // restart can never reuse the incarnation this rollback opened.
        assert_eq!(mw.disk().incarnation_floor().unwrap(), Incarnation::new(1));
        let restarted =
            MirroredMiddleware::restart(&dir, p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
        assert_eq!(restarted.middleware().incarnation(), Incarnation::new(1));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rollback_truncates_the_mirror() {
        let dir = scratch("rollback");
        let mut mw = MirroredMiddleware::create(
            &dir,
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::None, // retain everything so there is something to truncate
        )
        .unwrap();
        for _ in 0..4 {
            mw.basic_checkpoint().unwrap();
        }
        assert_eq!(mw.disk().indices().unwrap().len(), 5);
        mw.rollback(CheckpointIndex::new(1), None).unwrap();
        assert_eq!(
            mw.disk().indices().unwrap(),
            vec![CheckpointIndex::new(0), CheckpointIndex::new(1)]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
