//! Binary on-disk format for one stable-checkpoint record.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4]   b"RDTC"
//! version u16       current: 2
//! owner   u32       process id
//! index   u64       checkpoint index γ
//! n       u32       dependency-vector length
//! dv      (u32 + u64) × n   entries: incarnation ν, interval γ
//! size    u64       application state-snapshot size, in bytes
//! check   u64       FNV-1a over every preceding byte
//! ```
//!
//! The dependency-vector entries are stored **wide** — an explicit
//! `u32` incarnation next to a full `u64` interval per entry — even though
//! the in-memory [`rdt_base::DvEntry`] packs both into one word. Durable
//! bytes outlive the in-memory representation: keeping the fields explicit
//! means a future change of the packed field split (16/48 today) re-reads
//! old mirrors without a migration, and an entry whose components no longer
//! fit the current packing decodes to a typed error instead of silently
//! folding into the wrong lineage.
//!
//! Version 1 records (written before incarnation numbers reached the disk
//! format) carried bare `u64` intervals; they decode with every entry in
//! the initial incarnation. Encoding always writes the current version.
//!
//! The checksum turns torn writes and bit rot into decode errors instead of
//! silently corrupt recovery state — a checkpoint that cannot be trusted
//! must not be restored.

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};

use crate::error::{Error, Result};

const MAGIC: [u8; 4] = *b"RDTC";
/// Pre-incarnation format: bare `u64` intervals. Decoded, never written.
const VERSION_NARROW: u16 = 1;
/// Current format: wide `(u32 incarnation, u64 interval)` entries.
const VERSION: u16 = 2;

/// One decoded checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The process that took the checkpoint.
    pub owner: ProcessId,
    /// The checkpoint index.
    pub index: CheckpointIndex,
    /// The dependency vector stored with it (Section 4.2).
    pub dv: DependencyVector,
    /// Application state-snapshot size, in bytes.
    pub state_size: usize,
}

/// FNV-1a, 64-bit. Shared with the incarnation-log slot format.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes a record into its on-disk bytes (always the current version).
pub fn encode(record: &Record) -> Vec<u8> {
    let lineages = record.dv.to_raw_lineages();
    let mut out = Vec::with_capacity(4 + 2 + 4 + 8 + 4 + lineages.len() * 12 + 8 + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(record.owner.index() as u32).to_le_bytes());
    out.extend_from_slice(&(record.index.value() as u64).to_le_bytes());
    out.extend_from_slice(&(lineages.len() as u32).to_le_bytes());
    for (incarnation, interval) in lineages {
        out.extend_from_slice(&incarnation.to_le_bytes());
        out.extend_from_slice(&(interval as u64).to_le_bytes());
    }
    out.extend_from_slice(&(record.state_size as u64).to_le_bytes());
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Decodes a record from its on-disk bytes (current or version-1 format).
///
/// # Errors
///
/// [`Error::Corrupt`] for truncation, bad magic, unsupported version,
/// trailing bytes, checksum mismatch, or an entry whose components do not
/// fit the in-memory packed representation.
pub fn decode(bytes: &[u8]) -> Result<Record> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != MAGIC {
        return Err(Error::Corrupt("bad magic"));
    }
    let version = cursor.u16()?;
    if version != VERSION && version != VERSION_NARROW {
        return Err(Error::Corrupt("unsupported version"));
    }
    let owner = cursor.u32()? as usize;
    let index = cursor.u64()? as usize;
    let n = cursor.u32()? as usize;
    if n == 0 {
        return Err(Error::Corrupt("empty dependency vector"));
    }
    let entry_size = if version == VERSION { 12 } else { 8 };
    // Guard against absurd lengths from corrupt headers before allocating.
    if bytes.len() < cursor.pos + n.saturating_mul(entry_size) + 16 {
        return Err(Error::Corrupt("truncated dependency vector"));
    }
    let mut lineages = Vec::with_capacity(n);
    for _ in 0..n {
        let incarnation = if version == VERSION { cursor.u32()? } else { 0 };
        let interval = cursor.u64()? as usize;
        lineages.push((incarnation, interval));
    }
    let state_size = cursor.u64()? as usize;
    let payload_end = cursor.pos;
    let check = cursor.u64()?;
    if cursor.pos != bytes.len() {
        return Err(Error::Corrupt("trailing bytes"));
    }
    if fnv1a(&bytes[..payload_end]) != check {
        return Err(Error::Corrupt("checksum mismatch"));
    }
    let dv = DependencyVector::try_from_lineages(&lineages)
        .map_err(|_| Error::Corrupt("entry overflows the packed dependency-vector word"))?;
    Ok(Record {
        owner: ProcessId::new(owner),
        index: CheckpointIndex::new(index),
        dv,
        state_size,
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(Error::Corrupt("truncated record"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        Record {
            owner: ProcessId::new(2),
            index: CheckpointIndex::new(7),
            dv: DependencyVector::from_raw(vec![3, 0, 8]),
            state_size: 4096,
        }
    }

    /// Hand-rolls a version-1 record (bare `u64` intervals) for
    /// backward-compatibility tests.
    fn encode_v1(owner: u32, index: u64, raw: &[u64], state_size: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION_NARROW.to_le_bytes());
        out.extend_from_slice(&owner.to_le_bytes());
        out.extend_from_slice(&index.to_le_bytes());
        out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        for &entry in raw {
            out.extend_from_slice(&entry.to_le_bytes());
        }
        out.extend_from_slice(&state_size.to_le_bytes());
        let check = fnv1a(&out);
        out.extend_from_slice(&check.to_le_bytes());
        out
    }

    #[test]
    fn roundtrip() {
        let r = record();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn roundtrip_preserves_incarnations() {
        let r = Record {
            dv: DependencyVector::from_lineages(vec![(0, 3), (2, 1), (1, 9)]),
            ..record()
        };
        let decoded = decode(&encode(&r)).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.dv.to_raw_lineages(), vec![(0, 3), (2, 1), (1, 9)]);
    }

    #[test]
    fn version_1_records_decode_in_the_initial_incarnation() {
        let bytes = encode_v1(2, 7, &[3, 0, 8], 4096);
        assert_eq!(decode(&bytes).unwrap(), record());
    }

    #[test]
    fn oversized_components_are_corrupt_not_truncated() {
        // A wide on-disk entry whose interval exceeds the packed 48-bit
        // field must be rejected, not silently folded.
        let r = record();
        let mut bytes = encode(&r);
        // Entry 0's interval u64 sits after magic+version+owner+index+n+inc0.
        let off = 4 + 2 + 4 + 8 + 4 + 4;
        bytes[off..off + 8].copy_from_slice(&(1u64 << 48).to_le_bytes());
        // Re-seal the checksum so only the overflow check can fire.
        let payload_end = bytes.len() - 8;
        let check = fnv1a(&bytes[..payload_end]);
        bytes[payload_end..].copy_from_slice(&check.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(Error::Corrupt(
                "entry overflows the packed dependency-vector word"
            ))
        ));
    }

    #[test]
    fn single_entry_dv_roundtrips() {
        let r = Record {
            dv: DependencyVector::from_raw(vec![0]),
            ..record()
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&record());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(Error::Corrupt("bad magic"))));
    }

    #[test]
    fn flipped_bit_is_rejected() {
        let mut bytes = encode(&record());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&record());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "accepted prefix of {len}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&record());
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(Error::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&record());
        bytes[4] = 9; // version low byte
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn absurd_length_header_does_not_allocate() {
        let mut bytes = encode(&record());
        // Overwrite n with u32::MAX; decode must fail cleanly.
        let n_off = 4 + 2 + 4 + 8;
        bytes[n_off..n_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}
