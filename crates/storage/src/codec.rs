//! Binary on-disk format for one stable-checkpoint record.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4]   b"RDTC"
//! version u16       current: 1
//! owner   u32       process id
//! index   u64       checkpoint index γ
//! n       u32       dependency-vector length
//! dv      u64 × n   interval indices
//! size    u64       application state-snapshot size, in bytes
//! check   u64       FNV-1a over every preceding byte
//! ```
//!
//! The checksum turns torn writes and bit rot into decode errors instead of
//! silently corrupt recovery state — a checkpoint that cannot be trusted
//! must not be restored.

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};

use crate::error::{Error, Result};

const MAGIC: [u8; 4] = *b"RDTC";
const VERSION: u16 = 1;

/// One decoded checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The process that took the checkpoint.
    pub owner: ProcessId,
    /// The checkpoint index.
    pub index: CheckpointIndex,
    /// The dependency vector stored with it (Section 4.2).
    pub dv: DependencyVector,
    /// Application state-snapshot size, in bytes.
    pub state_size: usize,
}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes a record into its on-disk bytes.
pub fn encode(record: &Record) -> Vec<u8> {
    let raw = record.dv.to_raw();
    let mut out = Vec::with_capacity(4 + 2 + 4 + 8 + 4 + raw.len() * 8 + 8 + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(record.owner.index() as u32).to_le_bytes());
    out.extend_from_slice(&(record.index.value() as u64).to_le_bytes());
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    for entry in raw {
        out.extend_from_slice(&(entry as u64).to_le_bytes());
    }
    out.extend_from_slice(&(record.state_size as u64).to_le_bytes());
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Decodes a record from its on-disk bytes.
///
/// # Errors
///
/// [`Error::Corrupt`] for truncation, bad magic, unsupported version,
/// trailing bytes or checksum mismatch.
pub fn decode(bytes: &[u8]) -> Result<Record> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != MAGIC {
        return Err(Error::Corrupt("bad magic"));
    }
    let version = cursor.u16()?;
    if version != VERSION {
        return Err(Error::Corrupt("unsupported version"));
    }
    let owner = cursor.u32()? as usize;
    let index = cursor.u64()? as usize;
    let n = cursor.u32()? as usize;
    if n == 0 {
        return Err(Error::Corrupt("empty dependency vector"));
    }
    // Guard against absurd lengths from corrupt headers before allocating.
    if bytes.len() < cursor.pos + n.saturating_mul(8) + 16 {
        return Err(Error::Corrupt("truncated dependency vector"));
    }
    let mut raw = Vec::with_capacity(n);
    for _ in 0..n {
        raw.push(cursor.u64()? as usize);
    }
    let state_size = cursor.u64()? as usize;
    let payload_end = cursor.pos;
    let check = cursor.u64()?;
    if cursor.pos != bytes.len() {
        return Err(Error::Corrupt("trailing bytes"));
    }
    if fnv1a(&bytes[..payload_end]) != check {
        return Err(Error::Corrupt("checksum mismatch"));
    }
    Ok(Record {
        owner: ProcessId::new(owner),
        index: CheckpointIndex::new(index),
        dv: DependencyVector::from_raw(raw),
        state_size,
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(Error::Corrupt("truncated record"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        Record {
            owner: ProcessId::new(2),
            index: CheckpointIndex::new(7),
            dv: DependencyVector::from_raw(vec![3, 0, 8]),
            state_size: 4096,
        }
    }

    #[test]
    fn roundtrip() {
        let r = record();
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn single_entry_dv_roundtrips() {
        let r = Record {
            dv: DependencyVector::from_raw(vec![0]),
            ..record()
        };
        assert_eq!(decode(&encode(&r)).unwrap(), r);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&record());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(Error::Corrupt("bad magic"))));
    }

    #[test]
    fn flipped_bit_is_rejected() {
        let mut bytes = encode(&record());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&record());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "accepted prefix of {len}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&record());
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(Error::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&record());
        bytes[4] = 9; // version low byte
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn absurd_length_header_does_not_allocate() {
        let mut bytes = encode(&record());
        // Overwrite n with u32::MAX; decode must fail cleanly.
        let n_off = 4 + 2 + 4 + 8;
        bytes[n_off..n_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}
