//! File-backed stable storage for RDT checkpointing.
//!
//! The paper's model (Section 2) gives every process a stable storage that
//! "persists through failures, preserving the stored information". The
//! rest of this workspace models it in memory; this crate makes it literal:
//! one directory per process, one checksummed record per checkpoint
//! ([`codec`]), atomic writes, and a [`DurableStore::rebuild`] path that
//! turns the surviving files back into the in-memory
//! [`CheckpointStore`](rdt_core::CheckpointStore) a restarting process
//! recovers from (see `Middleware::from_store` in `rdt-protocols`).
//!
//! ```
//! use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};
//! use rdt_storage::DurableStore;
//!
//! # fn main() -> Result<(), rdt_storage::Error> {
//! let dir = std::env::temp_dir().join(format!("rdt-doc-{}", std::process::id()));
//! let store = DurableStore::open(&dir, ProcessId::new(0))?;
//! store.persist(CheckpointIndex::ZERO, &DependencyVector::new(2), 0)?;
//! assert_eq!(store.rebuild()?.len(), 1);
//! # std::fs::remove_dir_all(dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
mod durable;
mod error;
mod mirror;
mod sink;
pub mod torture;

pub use backend::{FaultFs, FaultKind, FaultPlan, StdFs, StorageBackend};
pub use durable::{DurableStore, RestartReport};
pub use error::{Error, Result};
pub use mirror::MirroredMiddleware;
pub use sink::DiskSink;
