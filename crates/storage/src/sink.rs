//! The durable [`Storage`](rdt_env::Storage) sink: a [`DurableStore`]
//! plugged directly into a generic `Middleware<DiskSink>`.
//!
//! This is the glue between the runtime-abstraction layer (`rdt-env`,
//! where the `Storage` trait lives) and this crate's file-backed store.
//! A middleware constructed with a `DiskSink` persists every stable-store
//! mutation and write-aheads incarnations without any wrapper forwarding:
//! the middleware itself calls [`Storage::commit`] after each mutating
//! event and [`Storage::wal_incarnation`] before a rollback.

use rdt_base::Incarnation;
use rdt_core::CheckpointStore;
use rdt_env::Storage;

use crate::durable::DurableStore;
use crate::error::Error;

/// A [`DurableStore`] speaking the `rdt-env` [`Storage`] contract.
#[derive(Debug)]
pub struct DiskSink {
    disk: DurableStore,
}

impl DiskSink {
    /// Wraps an opened durable store.
    pub fn over(disk: DurableStore) -> Self {
        Self { disk }
    }

    /// The wrapped durable store.
    pub fn disk(&self) -> &DurableStore {
        &self.disk
    }

    /// Unwraps the durable store.
    pub fn into_disk(self) -> DurableStore {
        self.disk
    }
}

impl Storage for DiskSink {
    type Error = Error;

    fn commit(&mut self, store: &CheckpointStore) -> Result<(), Error> {
        self.disk.sync(store).map(|_counts| ())
    }

    fn wal_incarnation(&mut self, incarnation: Incarnation) -> Result<(), Error> {
        self.disk.persist_incarnation_floor(incarnation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rdt-sink-test-{}-{tag}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_and_wal_reach_the_disk() {
        let dir = scratch("basic");
        let owner = ProcessId::new(0);
        let mut sink = DiskSink::over(DurableStore::open(&dir, owner).unwrap());
        let mut store = CheckpointStore::new(owner);
        store.insert(CheckpointIndex::ZERO, DependencyVector::new(2));
        sink.commit(&store).unwrap();
        sink.wal_incarnation(Incarnation::new(2)).unwrap();
        assert_eq!(sink.disk().indices().unwrap().len(), 1);
        assert_eq!(
            sink.disk().incarnation_floor().unwrap(),
            Incarnation::new(2)
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
