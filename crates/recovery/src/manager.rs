//! The centralized recovery manager (Section 2.4 of the paper).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointId, CheckpointIndex, DependencyVector, Incarnation, ProcessId};
use rdt_core::{GcKind, LastIntervals};
use rdt_env::Storage;
use rdt_protocols::Middleware;

/// The set of processes that failed, triggering the recovery session.
pub type FaultySet = BTreeSet<ProcessId>;

/// What the manager needs to know about one process to compute a recovery
/// line: Lemma 1 reads only dependency vectors and store metadata, never
/// application state. Implemented by [`Middleware`] itself (the in-place
/// sequential path — no copying) and by [`ProcessView`] (an owned snapshot
/// a shard worker can ship across threads).
pub trait LineSource {
    /// The process this state belongs to.
    fn owner(&self) -> ProcessId;
    /// The volatile dependency vector.
    fn dv(&self) -> &DependencyVector;
    /// Index of the last stable checkpoint.
    fn last_stable(&self) -> CheckpointIndex;
    /// The live incarnation.
    fn incarnation(&self) -> Incarnation;
    /// The collector in force (decides exhaustion vs. degradation).
    fn gc_kind(&self) -> GcKind;
    /// Stored checkpoints with their vectors, newest first.
    fn stored_rev(&self) -> impl Iterator<Item = (CheckpointIndex, &DependencyVector)>;
    /// The oldest surviving stored checkpoint (degradation target).
    fn oldest_stored(&self) -> Option<CheckpointIndex>;
}

impl<S: Storage> LineSource for Middleware<S> {
    fn owner(&self) -> ProcessId {
        Middleware::owner(self)
    }

    fn dv(&self) -> &DependencyVector {
        Middleware::dv(self)
    }

    fn last_stable(&self) -> CheckpointIndex {
        Middleware::last_stable(self)
    }

    fn incarnation(&self) -> Incarnation {
        Middleware::incarnation(self)
    }

    fn gc_kind(&self) -> GcKind {
        Middleware::gc_kind(self)
    }

    fn stored_rev(&self) -> impl Iterator<Item = (CheckpointIndex, &DependencyVector)> {
        self.store()
            .indices()
            .rev()
            .map(|idx| (idx, self.store().dv(idx).expect("stored")))
    }

    fn oldest_stored(&self) -> Option<CheckpointIndex> {
        self.store().indices().next()
    }
}

/// An owned snapshot of one process's line-relevant state, detached from
/// the middleware so it can cross a thread boundary (the sharded engine's
/// workers gather these at a recovery barrier; the coordinator plans the
/// session over them).
#[derive(Debug, Clone)]
pub struct ProcessView {
    /// The process snapshotted.
    pub owner: ProcessId,
    /// Its volatile dependency vector.
    pub dv: DependencyVector,
    /// Its last stable checkpoint index.
    pub last_stable: CheckpointIndex,
    /// Its live incarnation.
    pub incarnation: Incarnation,
    /// Its collector.
    pub gc_kind: GcKind,
    /// Its stored checkpoints with their vectors, **oldest first**.
    pub stored: Vec<(CheckpointIndex, DependencyVector)>,
}

impl ProcessView {
    /// Snapshots `mw`'s line-relevant state.
    pub fn of<S: Storage>(mw: &Middleware<S>) -> Self {
        Self {
            owner: Middleware::owner(mw),
            dv: Middleware::dv(mw).clone(),
            last_stable: Middleware::last_stable(mw),
            incarnation: Middleware::incarnation(mw),
            gc_kind: Middleware::gc_kind(mw),
            stored: mw
                .store()
                .iter()
                .map(|(idx, dv)| (idx, dv.clone()))
                .collect(),
        }
    }
}

impl LineSource for ProcessView {
    fn owner(&self) -> ProcessId {
        self.owner
    }

    fn dv(&self) -> &DependencyVector {
        &self.dv
    }

    fn last_stable(&self) -> CheckpointIndex {
        self.last_stable
    }

    fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    fn gc_kind(&self) -> GcKind {
        self.gc_kind
    }

    fn stored_rev(&self) -> impl Iterator<Item = (CheckpointIndex, &DependencyVector)> {
        self.stored.iter().rev().map(|(idx, dv)| (*idx, dv))
    }

    fn oldest_stored(&self) -> Option<CheckpointIndex> {
        self.stored.first().map(|&(idx, _)| idx)
    }
}

/// A recovery-session failure.
///
/// With incarnation-numbered intervals, Lemma 1 is total for every
/// *safe* garbage collector: some stored checkpoint of each process is
/// always unblocked (the initial checkpoint is preceded by nothing in any
/// live incarnation, and a safe collector only eliminates checkpoints no
/// future line can name). Exhausting a process's stored checkpoints under
/// such a collector is therefore a garbage-collection safety bug and
/// surfaces as this error — in release builds too — rather than silently
/// restoring an inconsistent state. Only the time-based baseline, whose
/// safety rests on real-time assumptions, is allowed to degrade to the
/// oldest survivor instead (reported, not errored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Every stored checkpoint of `process` was blocked under a collector
    /// that guarantees this cannot happen.
    LineExhausted {
        /// The process whose store was exhausted.
        process: ProcessId,
        /// The (safe) collector that eliminated the needed checkpoint.
        gc: GcKind,
    },
    /// A rollback's durability sink failed mid-session (the incarnation
    /// write-ahead log could not be made stable). The affected process is
    /// left crashed and unmutated, so the session can be retried once the
    /// sink recovers.
    Storage {
        /// The process whose sink refused the write-ahead.
        process: ProcessId,
        /// The sink's own error rendering.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::LineExhausted { process, gc } => write!(
                f,
                "recovery line exhausted {process}'s stored checkpoints under safe collector {gc}: \
                 Lemma 1 must be total"
            ),
            RecoveryError::Storage { process, detail } => {
                write!(
                    f,
                    "rollback of {process} failed at the storage sink: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<RecoveryError> for rdt_base::Error {
    fn from(e: RecoveryError) -> Self {
        match e {
            RecoveryError::LineExhausted { process, .. } => {
                rdt_base::Error::RecoveryLineExhausted { process }
            }
            RecoveryError::Storage { process, detail } => {
                rdt_base::Error::Storage(format!("{process}: {detail}"))
            }
        }
    }
}

/// How a recovery session distributes information (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RecoveryMode {
    /// The manager distributes the last-interval vector `LI`; rolling-back
    /// processes run Algorithm 3 with global information and the others
    /// release stale pins (`DV[f] < LI[f]`).
    #[default]
    Coordinated,
    /// No global information: rolling-back processes run Algorithm 3 with
    /// `DV` in place of `LI` (garbage collection by Theorem 2 instead of
    /// Theorem 1); the others just continue.
    Uncoordinated,
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryMode::Coordinated => write!(f, "coordinated"),
            RecoveryMode::Uncoordinated => write!(f, "uncoordinated"),
        }
    }
}

/// Outcome of one recovery session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySessionReport {
    /// The faulty set that triggered the session.
    pub faulty: Vec<ProcessId>,
    /// The recovery line: one component per process (`last_stable + 1`
    /// denotes the volatile state of a non-rolling process).
    pub line: Vec<CheckpointIndex>,
    /// Which processes actually rolled back, and to which checkpoint.
    pub rolled_back: Vec<(ProcessId, CheckpointIndex)>,
    /// Checkpoints eliminated across all processes during the session
    /// (rolled-back states plus rollback garbage collection).
    pub eliminated: Vec<CheckpointId>,
    /// The distributed last-interval vector (coordinated mode only).
    pub li: Option<LastIntervals>,
    /// Processes whose line component *degraded* to the oldest surviving
    /// checkpoint because an unsafe (time-based) collector had eliminated
    /// every unblocked one — the data-loss events the paper's safety
    /// comparison quantifies. Always empty for safe collectors, which error
    /// instead ([`RecoveryError::LineExhausted`]).
    pub degraded: Vec<ProcessId>,
    /// Each process's incarnation after the session (bumped for everyone
    /// who rolled back).
    pub incarnations: Vec<Incarnation>,
}

impl RecoverySessionReport {
    /// Total checkpoints rolled back across processes (the paper's
    /// "number of general checkpoints rolled back" metric, stable part).
    pub fn rollback_depth(&self) -> usize {
        self.rolled_back.len()
    }
}

/// A centralized recovery manager: stops the world, collects the volatile
/// state of the non-faulty processes and the stable-store metadata of all,
/// determines the recovery line by **Lemma 1**, and orchestrates the
/// rollbacks.
///
/// The caller (simulator or application harness) is responsible for the
/// "stop the world" part — in particular for discarding in-transit
/// messages, which the recovered CCP must exclude (Section 2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryManager {
    mode: RecoveryMode,
}

impl RecoveryManager {
    /// A coordinated-mode manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager with an explicit mode.
    pub fn with_mode(mode: RecoveryMode) -> Self {
        Self { mode }
    }

    /// The mode in force.
    pub fn mode(&self) -> RecoveryMode {
        self.mode
    }

    /// Computes the recovery line for `faulty` over the current state of
    /// `processes` (Lemma 1): for each process, the latest stored
    /// checkpoint — or volatile state, if not faulty — that is not causally
    /// preceded by the last stable checkpoint of any faulty process **in
    /// that process's live incarnation**.
    ///
    /// Blocking is evaluated with the incarnation-aware Equation 2
    /// ([`rdt_base::DependencyVector::dominates_live_checkpoint`]): a
    /// dependency recorded against a *dead* incarnation of a faulty process
    /// never blocks, because the surviving prefix of every dead incarnation
    /// lies at or below the live execution's restore points — and hence at
    /// or below the faulty process's current last stable checkpoint. This is
    /// what makes the scan total under repeated crash/rollback sessions:
    /// `s_i^0` (all-zero vector, initial incarnation) is never blocked, and
    /// safe collectors never eliminate the checkpoint the line names.
    ///
    /// Returns one component per process; `last_stable + 1` denotes the
    /// volatile state.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::LineExhausted`] if every stored checkpoint of some
    /// process is blocked under a *safe* collector — a garbage-collection
    /// safety violation, checked in release builds too. The time-based
    /// baseline (`needs_time_assumptions()`) instead degrades to the oldest
    /// survivor; [`recover`](Self::recover) reports those processes in
    /// [`RecoverySessionReport::degraded`].
    ///
    /// # Panics
    ///
    /// Panics if `faulty` references processes outside `processes`, or if
    /// process ids do not match vector positions.
    pub fn recovery_line<V: LineSource>(
        &self,
        processes: &[V],
        faulty: &FaultySet,
    ) -> Result<Vec<CheckpointIndex>, RecoveryError> {
        self.line_with_degradation(processes, faulty)
            .map(|(line, _)| line)
    }

    /// [`recovery_line`](Self::recovery_line) with provenance: the same
    /// scan, additionally recording per process which DV entry pinned the
    /// chosen component (the entry that blocked the lowest rejected
    /// candidate) and which dead-incarnation entries were amnestied.
    ///
    /// Unlike the offline [`rdt_ccp::Ccp::explain_recovery_line`], the
    /// online scan only sees checkpoints the collector retained, so a
    /// pin's `rejected` candidate is the lowest *stored* rejection — not
    /// necessarily `chosen + 1`. A process degraded to its oldest survivor
    /// (time-based GC only) reports the pin that blocked that survivor,
    /// with `chosen == pinned_by.rejected` marking the degradation.
    ///
    /// # Errors
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    ///
    /// # Panics
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    pub fn explain<V: LineSource>(
        &self,
        processes: &[V],
        faulty: &FaultySet,
    ) -> Result<rdt_ccp::LineExplanation, RecoveryError> {
        use rdt_ccp::{AmnestiedEntry, ComponentProvenance, LineExplanation, PinCause};
        let n = processes.len();
        for (k, mw) in processes.iter().enumerate() {
            assert_eq!(mw.owner().index(), k, "middlewares must be in id order");
        }
        for f in faulty {
            assert!(f.index() < n, "faulty process out of range");
        }
        let last_stable: Vec<CheckpointIndex> =
            processes.iter().map(|mw| mw.last_stable()).collect();
        let live_inc: Vec<Incarnation> = processes.iter().map(|mw| mw.incarnation()).collect();

        let mut components = Vec::with_capacity(n);
        for mw in processes {
            let i = mw.owner();
            let is_faulty = faulty.contains(&i);
            let ceiling = if is_faulty {
                mw.last_stable()
            } else {
                mw.last_stable().next()
            };
            let mut amnestied: Vec<AmnestiedEntry> = Vec::new();
            let mut last_pin: Option<PinCause> = None;

            // Evaluates one candidate exactly like line_with_degradation's
            // blocked test, returning the pin when blocked and recording
            // amnestied dead-incarnation entries either way.
            let eval = |idx: CheckpointIndex,
                        dv: &DependencyVector,
                        amnestied: &mut Vec<AmnestiedEntry>|
             -> Option<PinCause> {
                let mut pin = None;
                for &f in faulty {
                    // A checkpoint never precedes itself (see the guard in
                    // line_with_degradation); volatile candidates sit above
                    // last_stable, so the guard never fires for them.
                    if f == i && idx == last_stable[f.index()] {
                        continue;
                    }
                    let alpha = last_stable[f.index()];
                    let live = live_inc[f.index()];
                    let entry = dv.lineage(f);
                    if dv.dominates_live_checkpoint(f, alpha, live) {
                        if pin.is_none() {
                            pin = Some(PinCause {
                                blocker: f,
                                rejected: idx,
                                incarnation: entry.incarnation().value(),
                                interval: entry.interval().value(),
                                last_stable: alpha,
                            });
                        }
                    } else if alpha.value() < entry.interval().value()
                        && entry.incarnation() < live
                    {
                        amnestied.push(AmnestiedEntry {
                            at: idx,
                            faulty: f,
                            incarnation: entry.incarnation().value(),
                            interval: entry.interval().value(),
                            live_incarnation: live.value(),
                        });
                    }
                }
                pin
            };

            let mut chosen = None;
            if !is_faulty {
                match eval(ceiling, mw.dv(), &mut amnestied) {
                    None => chosen = Some(ceiling),
                    Some(pin) => last_pin = Some(pin),
                }
            }
            if chosen.is_none() {
                for (idx, dv) in mw.stored_rev() {
                    if is_faulty && idx > ceiling {
                        continue;
                    }
                    match eval(idx, dv, &mut amnestied) {
                        None => {
                            chosen = Some(idx);
                            break;
                        }
                        Some(pin) => last_pin = Some(pin),
                    }
                }
            }
            let chosen = match chosen {
                Some(c) => c,
                None => {
                    if !mw.gc_kind().needs_time_assumptions() {
                        return Err(RecoveryError::LineExhausted {
                            process: i,
                            gc: mw.gc_kind(),
                        });
                    }
                    mw.oldest_stored()
                        .expect("stable storage retains at least one checkpoint")
                }
            };
            components.push(ComponentProvenance {
                process: i,
                chosen,
                ceiling,
                volatile_kept: !is_faulty && chosen == ceiling,
                pinned_by: last_pin,
                amnestied,
            });
        }
        Ok(LineExplanation { components })
    }

    /// [`recovery_line`](Self::recovery_line), also reporting which
    /// processes degraded to the oldest survivor.
    fn line_with_degradation<V: LineSource>(
        &self,
        processes: &[V],
        faulty: &FaultySet,
    ) -> Result<(Vec<CheckpointIndex>, Vec<ProcessId>), RecoveryError> {
        let n = processes.len();
        for (k, mw) in processes.iter().enumerate() {
            assert_eq!(mw.owner().index(), k, "middlewares must be in id order");
        }
        for f in faulty {
            assert!(f.index() < n, "faulty process out of range");
        }
        let last_stable: Vec<CheckpointIndex> =
            processes.iter().map(|mw| mw.last_stable()).collect();
        let live_inc: Vec<Incarnation> = processes.iter().map(|mw| mw.incarnation()).collect();

        let mut line = Vec::with_capacity(n);
        let mut degraded = Vec::new();
        'processes: for mw in processes {
            let i = mw.owner();
            // Volatile candidate first for non-faulty processes.
            if !faulty.contains(&i) {
                let blocked = faulty.iter().any(|&f| {
                    mw.dv().dominates_live_checkpoint(
                        f,
                        last_stable[f.index()],
                        live_inc[f.index()],
                    )
                });
                if !blocked {
                    line.push(mw.last_stable().next());
                    continue;
                }
            }
            // Stored checkpoints, newest first.
            for (idx, dv) in mw.stored_rev() {
                let blocked = faulty.iter().any(|&f| {
                    // s_f^last → s_i^idx, except a checkpoint never precedes
                    // itself. The guard holds across incarnations: the
                    // stored copy of the last stable checkpoint may have
                    // been written in an earlier incarnation than the one
                    // now executing (repeated rollbacks onto the same
                    // index), and it still must not count as its own
                    // blocker.
                    !(f == i && idx == last_stable[f.index()])
                        && dv.dominates_live_checkpoint(
                            f,
                            last_stable[f.index()],
                            live_inc[f.index()],
                        )
                });
                if !blocked {
                    line.push(idx);
                    continue 'processes;
                }
            }
            // With incarnation-numbered intervals Lemma 1 is total over the
            // checkpoints a *safe* collector retains. Only the time-based
            // baseline — whose delay assumption can break — may land here;
            // it degrades to the oldest survivor: the closest available
            // approximation of the true line, and exactly the data-loss
            // scenario the paper's safety comparison quantifies.
            if !mw.gc_kind().needs_time_assumptions() {
                return Err(RecoveryError::LineExhausted {
                    process: i,
                    gc: mw.gc_kind(),
                });
            }
            degraded.push(i);
            line.push(
                mw.oldest_stored()
                    .expect("stable storage retains at least one checkpoint"),
            );
        }
        Ok((line, degraded))
    }

    /// Computes everything a recovery session decides — the line, the
    /// degraded set, the post-session `(component, incarnation)` pairs and
    /// the `LI` vector — without touching any process state. The first
    /// half of [`recover`](Self::recover), usable over [`ProcessView`]
    /// snapshots gathered from worker threads.
    ///
    /// # Errors
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    ///
    /// # Panics
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    pub fn plan<V: LineSource>(
        &self,
        processes: &[V],
        faulty: &FaultySet,
    ) -> Result<RecoveryPlan, RecoveryError> {
        let (line, degraded) = self.line_with_degradation(processes, faulty)?;

        // LI over the post-recovery CCP: a rolling process's last stable
        // becomes its component and its rollback opens a fresh incarnation;
        // a non-rolling process keeps both its own. Building LI with the
        // *post-session* incarnations is what lets every receiver compare
        // `DV[f] < LI[f]` lexicographically and recognize pre-rollback
        // knowledge of `f` as stale.
        let components: Vec<(CheckpointIndex, Incarnation)> = processes
            .iter()
            .zip(&line)
            .map(|(mw, &component)| {
                let will_roll = component < mw.last_stable().next();
                let incarnation = if will_roll {
                    mw.incarnation().next()
                } else {
                    mw.incarnation()
                };
                (component.min(mw.last_stable()), incarnation)
            })
            .collect();
        let li = LastIntervals::from_components(&components);

        Ok(RecoveryPlan {
            line,
            degraded,
            components,
            li,
        })
    }

    /// Applies one process's share of a planned session: the Algorithm-3
    /// rollback if its line component is below its volatile state, the
    /// `LI`-driven stale-pin release otherwise (coordinated mode).
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Storage`] if the rollback's durability sink failed;
    /// the process is left crashed and unmutated.
    ///
    /// # Panics
    ///
    /// Panics if the line names a checkpoint the store no longer holds —
    /// impossible for a plan produced by [`plan`](Self::plan) over this
    /// process's current state (Theorem 4).
    pub fn apply_to<S: Storage>(
        &self,
        mw: &mut Middleware<S>,
        plan: &RecoveryPlan,
    ) -> Result<AppliedRecovery, RecoveryError> {
        let p = Middleware::owner(mw);
        let component = plan.line[p.index()];
        let li_opt = match self.mode {
            RecoveryMode::Coordinated => Some(&plan.li),
            RecoveryMode::Uncoordinated => None,
        };
        let volatile = Middleware::last_stable(mw).next();
        if component < volatile {
            let report = match mw.rollback(component, li_opt) {
                Ok(report) => report,
                // A sink refusing the incarnation WAL leaves the
                // process crashed and unmutated; surface it as a
                // retryable session failure.
                Err(rdt_base::Error::Storage(detail)) => {
                    return Err(RecoveryError::Storage { process: p, detail })
                }
                // Any other rollback failure contradicts Theorem 4
                // (the line only names stored checkpoints): a bug.
                Err(e) => {
                    panic!("recovery-line component is stored (Theorem 4 safety): {e}")
                }
            };
            debug_assert_eq!(
                Middleware::incarnation(mw),
                plan.components[p.index()].1,
                "rollback must open the incarnation LI promised"
            );
            Ok(AppliedRecovery {
                rolled_back: Some(component),
                eliminated: report.eliminated,
            })
        } else if let Some(li) = li_opt {
            Ok(AppliedRecovery {
                rolled_back: None,
                eliminated: mw.recovery_info(li),
            })
        } else {
            Ok(AppliedRecovery {
                rolled_back: None,
                eliminated: Vec::new(),
            })
        }
    }

    /// Runs a full recovery session: computes the line, rolls back every
    /// process whose component is below its volatile state (each rollback
    /// opening a fresh incarnation), and (in coordinated mode) distributes
    /// `LI` to the others.
    ///
    /// # Errors
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    ///
    /// # Panics
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    pub fn recover<S: Storage>(
        &self,
        processes: &mut [Middleware<S>],
        faulty: &FaultySet,
    ) -> Result<RecoverySessionReport, RecoveryError> {
        let plan = self.plan(processes, faulty)?;

        let mut rolled_back = Vec::new();
        let mut eliminated = Vec::new();
        for mw in processes.iter_mut() {
            let p = Middleware::owner(mw);
            let applied = self.apply_to(mw, &plan)?;
            if let Some(component) = applied.rolled_back {
                rolled_back.push((p, component));
            }
            eliminated.extend(
                applied
                    .eliminated
                    .into_iter()
                    .map(|idx| CheckpointId::new(p, idx)),
            );
        }

        Ok(self.report(faulty, plan, rolled_back, eliminated, |p| {
            Middleware::incarnation(&processes[p.index()])
        }))
    }

    /// Assembles the session report from a plan plus the merged apply
    /// outcomes — shared by [`recover`](Self::recover) and the sharded
    /// engine's coordinator (whose apply outcomes arrive from workers).
    pub fn report(
        &self,
        faulty: &FaultySet,
        plan: RecoveryPlan,
        rolled_back: Vec<(ProcessId, CheckpointIndex)>,
        eliminated: Vec<CheckpointId>,
        incarnation_of: impl Fn(ProcessId) -> Incarnation,
    ) -> RecoverySessionReport {
        let n = plan.line.len();
        RecoverySessionReport {
            faulty: faulty.iter().copied().collect(),
            line: plan.line,
            rolled_back,
            eliminated,
            li: match self.mode {
                RecoveryMode::Coordinated => Some(plan.li),
                RecoveryMode::Uncoordinated => None,
            },
            degraded: plan.degraded,
            incarnations: (0..n).map(|k| incarnation_of(ProcessId::new(k))).collect(),
        }
    }
}

/// The decisions of one recovery session, separated from their
/// application so the two halves can run on different threads (plan on
/// the coordinator over gathered [`ProcessView`]s, apply on the workers
/// owning the middlewares).
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// The recovery line (`last_stable + 1` = volatile state).
    pub line: Vec<CheckpointIndex>,
    /// Processes degraded to the oldest survivor (time-based GC only).
    pub degraded: Vec<ProcessId>,
    /// Post-session `(LI component, incarnation)` per process.
    pub components: Vec<(CheckpointIndex, Incarnation)>,
    /// The last-interval vector over the post-recovery CCP.
    pub li: LastIntervals,
}

/// One process's share of an applied recovery session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedRecovery {
    /// `Some(component)` if the process rolled back to `component`.
    pub rolled_back: Option<CheckpointIndex>,
    /// Checkpoints this process eliminated during the session.
    pub eliminated: Vec<CheckpointIndex>,
}

#[cfg(test)]
mod tests {
    use rdt_base::Payload;
    use rdt_core::GcKind;
    use rdt_protocols::ProtocolKind;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    fn system(n: usize) -> Vec<Middleware> {
        (0..n)
            .map(|i| Middleware::new(p(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
            .collect()
    }

    /// p0 checkpoints and informs p1; p1 checkpoints and informs p2.
    fn chain() -> Vec<Middleware> {
        let mut mws = system(3);
        mws[0].basic_checkpoint().unwrap();
        let m = mws[0].send(p(1), Payload::empty());
        mws[1].receive(&m).unwrap();
        mws[1].basic_checkpoint().unwrap();
        let m = mws[1].send(p(2), Payload::empty());
        mws[2].receive(&m).unwrap();
        mws
    }

    #[test]
    fn empty_faulty_set_keeps_all_volatile() {
        let mws = chain();
        let line = RecoveryManager::new()
            .recovery_line(&mws, &FaultySet::new())
            .unwrap();
        let volatile: Vec<_> = mws.iter().map(|m| m.last_stable().next()).collect();
        assert_eq!(line, volatile);
    }

    #[test]
    fn chain_head_failure_rolls_back_dependents() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty).unwrap();
        // p0 restarts from s^1 (its last stable), p1 and p2 roll to s^0.
        assert_eq!(report.line, vec![idx(1), idx(0), idx(0)]);
        assert_eq!(report.rolled_back.len(), 3);
        assert!(!mws[0].is_crashed());
        // Post-recovery vectors: restored checkpoint's DV, bumped.
        assert_eq!(mws[1].dv().entry(p(1)).value(), 1);
    }

    #[test]
    fn tail_failure_touches_only_the_tail() {
        let mut mws = chain();
        mws[2].crash();
        let faulty: FaultySet = [p(2)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty).unwrap();
        assert_eq!(
            report.rolled_back,
            vec![(p(2), idx(0))],
            "only the crashed tail rolls back"
        );
    }

    #[test]
    fn line_matches_offline_oracle() {
        // Mirror the chain into the offline CCP and compare Lemma-1 results.
        use rdt_ccp::CcpBuilder;
        let mws = chain();
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        let ccp = b.build();

        let mgr = RecoveryManager::new();
        for mask in 0u8..8 {
            let faulty: FaultySet = (0..3).filter(|i| mask & (1 << i) != 0).map(p).collect();
            let online = mgr.recovery_line(&mws, &faulty).unwrap();
            let offline = ccp.recovery_line(&faulty.iter().copied().collect());
            assert_eq!(
                online.iter().map(|c| c.value()).collect::<Vec<_>>(),
                offline.to_raw(),
                "faulty {faulty:?}"
            );
        }
    }

    #[test]
    fn explain_agrees_with_the_line_and_names_valid_pins() {
        let mws = chain();
        let mgr = RecoveryManager::new();
        for mask in 0u8..8 {
            let faulty: FaultySet = (0..3).filter(|i| mask & (1 << i) != 0).map(p).collect();
            let line = mgr.recovery_line(&mws, &faulty).unwrap();
            let exp = mgr.explain(&mws, &faulty).unwrap();
            assert_eq!(
                exp.line().to_raw(),
                line.iter().map(|c| c.value()).collect::<Vec<_>>(),
                "faulty {faulty:?}"
            );
            for comp in &exp.components {
                let mw = &mws[comp.process.index()];
                match &comp.pinned_by {
                    None => assert_eq!(comp.chosen, comp.ceiling, "unpinned = at ceiling"),
                    Some(pin) => {
                        assert!(faulty.contains(&pin.blocker));
                        assert!(pin.rejected > comp.chosen);
                        assert_eq!(pin.last_stable, mws[pin.blocker.index()].last_stable());
                        // The named entry ties the rejected candidate to the
                        // blocker's post-last-stable live execution.
                        assert_eq!(
                            pin.incarnation,
                            mws[pin.blocker.index()].incarnation().value()
                        );
                        assert!(pin.last_stable.value() < pin.interval);
                        // The rejected candidate is the volatile state or a
                        // stored checkpoint whose DV carries that entry.
                        let dv = if pin.rejected == mw.last_stable().next() {
                            mw.dv().clone()
                        } else {
                            mw.store().dv(pin.rejected).unwrap().clone()
                        };
                        assert_eq!(dv.lineage(pin.blocker).interval().value(), pin.interval);
                    }
                }
                assert!(comp.amnestied.is_empty(), "crash-free chain: no amnesty");
            }
        }
    }

    #[test]
    fn explain_matches_offline_provenance_when_nothing_was_collected() {
        // With every checkpoint still stored, the online scan sees the same
        // dense candidate set as the offline CCP model, so the explanations
        // agree pin-for-pin.
        use rdt_ccp::CcpBuilder;
        let mws = chain();
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        let ccp = b.build();
        let mgr = RecoveryManager::new();
        for mask in 0u8..8 {
            let faulty: FaultySet = (0..3).filter(|i| mask & (1 << i) != 0).map(p).collect();
            let online = mgr.explain(&mws, &faulty).unwrap();
            let offline = ccp.explain_recovery_line(&faulty.iter().copied().collect());
            assert_eq!(online.line(), offline.line(), "faulty {faulty:?}");
            for (on, off) in online.components.iter().zip(&offline.components) {
                // Chains never GC under these protocols before any crash,
                // so pins name identical entries. (If a future protocol
                // change starts collecting here, the line comparison above
                // still holds; this pin comparison would need the sparse
                // adjustment documented on `explain`.)
                assert_eq!(on.pinned_by, off.pinned_by, "faulty {faulty:?}");
                assert_eq!(on.volatile_kept, off.volatile_kept);
            }
        }
    }

    #[test]
    fn uncoordinated_mode_passes_no_li() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report = RecoveryManager::with_mode(RecoveryMode::Uncoordinated)
            .recover(&mut mws, &faulty)
            .unwrap();
        assert!(report.li.is_none());
        assert!(!mws[0].is_crashed());
    }

    #[test]
    fn recovery_line_components_are_restorable() {
        // Safety end-to-end: the line only names stored checkpoints.
        let mut mws = chain();
        for mw in &mut mws {
            mw.basic_checkpoint().unwrap();
        }
        mws[1].crash();
        let faulty: FaultySet = [p(1)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty).unwrap();
        for (proc_, to) in &report.rolled_back {
            assert!(mws[proc_.index()].store().contains(*to));
        }
    }

    #[test]
    fn views_plan_identically_to_live_middlewares() {
        // The sharded engine plans over gathered snapshots; the plan must
        // match what the sequential path computes in place.
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let views: Vec<ProcessView> = mws.iter().map(ProcessView::of).collect();
        let mgr = RecoveryManager::new();
        let from_views = mgr.plan(&views, &faulty).unwrap();
        let from_live = mgr.plan(&mws, &faulty).unwrap();
        assert_eq!(from_views.line, from_live.line);
        assert_eq!(from_views.components, from_live.components);
        assert_eq!(from_views.degraded, from_live.degraded);
        assert_eq!(from_views.li, from_live.li);
    }

    #[test]
    fn report_counts_rollback_depth() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty).unwrap();
        assert_eq!(report.rollback_depth(), report.rolled_back.len());
    }
}
