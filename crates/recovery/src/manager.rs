//! The centralized recovery manager (Section 2.4 of the paper).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointId, CheckpointIndex, ProcessId};
use rdt_core::LastIntervals;
use rdt_protocols::Middleware;

/// The set of processes that failed, triggering the recovery session.
pub type FaultySet = BTreeSet<ProcessId>;

/// How a recovery session distributes information (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RecoveryMode {
    /// The manager distributes the last-interval vector `LI`; rolling-back
    /// processes run Algorithm 3 with global information and the others
    /// release stale pins (`DV[f] < LI[f]`).
    #[default]
    Coordinated,
    /// No global information: rolling-back processes run Algorithm 3 with
    /// `DV` in place of `LI` (garbage collection by Theorem 2 instead of
    /// Theorem 1); the others just continue.
    Uncoordinated,
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryMode::Coordinated => write!(f, "coordinated"),
            RecoveryMode::Uncoordinated => write!(f, "uncoordinated"),
        }
    }
}

/// Outcome of one recovery session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySessionReport {
    /// The faulty set that triggered the session.
    pub faulty: Vec<ProcessId>,
    /// The recovery line: one component per process (`last_stable + 1`
    /// denotes the volatile state of a non-rolling process).
    pub line: Vec<CheckpointIndex>,
    /// Which processes actually rolled back, and to which checkpoint.
    pub rolled_back: Vec<(ProcessId, CheckpointIndex)>,
    /// Checkpoints eliminated across all processes during the session
    /// (rolled-back states plus rollback garbage collection).
    pub eliminated: Vec<CheckpointId>,
    /// The distributed last-interval vector (coordinated mode only).
    pub li: Option<LastIntervals>,
}

impl RecoverySessionReport {
    /// Total checkpoints rolled back across processes (the paper's
    /// "number of general checkpoints rolled back" metric, stable part).
    pub fn rollback_depth(&self) -> usize {
        self.rolled_back.len()
    }
}

/// A centralized recovery manager: stops the world, collects the volatile
/// state of the non-faulty processes and the stable-store metadata of all,
/// determines the recovery line by **Lemma 1**, and orchestrates the
/// rollbacks.
///
/// The caller (simulator or application harness) is responsible for the
/// "stop the world" part — in particular for discarding in-transit
/// messages, which the recovered CCP must exclude (Section 2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryManager {
    mode: RecoveryMode,
}

impl RecoveryManager {
    /// A coordinated-mode manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager with an explicit mode.
    pub fn with_mode(mode: RecoveryMode) -> Self {
        Self { mode }
    }

    /// The mode in force.
    pub fn mode(&self) -> RecoveryMode {
        self.mode
    }

    /// Computes the recovery line for `faulty` over the current state of
    /// `processes` (Lemma 1): for each process, the latest stored
    /// checkpoint — or volatile state, if not faulty — that is not causally
    /// preceded by the last stable checkpoint of any faulty process.
    ///
    /// Returns one component per process; `last_stable + 1` denotes the
    /// volatile state.
    ///
    /// # Panics
    ///
    /// Panics if `faulty` references processes outside `processes`, or if
    /// process ids do not match vector positions.
    pub fn recovery_line(
        &self,
        processes: &[Middleware],
        faulty: &FaultySet,
    ) -> Vec<CheckpointIndex> {
        let n = processes.len();
        for (k, mw) in processes.iter().enumerate() {
            assert_eq!(mw.owner().index(), k, "middlewares must be in id order");
        }
        for f in faulty {
            assert!(f.index() < n, "faulty process out of range");
        }
        let last_stable: Vec<CheckpointIndex> =
            processes.iter().map(|mw| mw.last_stable()).collect();

        processes
            .iter()
            .map(|mw| {
                let i = mw.owner();
                // Volatile candidate first for non-faulty processes.
                if !faulty.contains(&i) {
                    let blocked = faulty
                        .iter()
                        .any(|&f| mw.dv().dominates_checkpoint(f, last_stable[f.index()]));
                    if !blocked {
                        return mw.last_stable().next();
                    }
                }
                // Stored checkpoints, newest first.
                for idx in mw.store().indices().rev() {
                    let dv = mw.store().dv(idx).expect("stored");
                    let blocked = faulty.iter().any(|&f| {
                        // s_f^last → s_i^idx, except a checkpoint never
                        // precedes itself.
                        !(f == i && idx == last_stable[f.index()])
                            && dv.dominates_checkpoint(f, last_stable[f.index()])
                    });
                    if !blocked {
                        return idx;
                    }
                }
                // Lemma 1 is total over the full CCP (s_i^0 is preceded by
                // nothing), but an *unsafe* collector — the time-based
                // baseline when its delay assumption breaks — may have
                // eliminated every unblocked checkpoint. Degrade to the
                // oldest survivor: the closest available approximation of
                // the true line, and exactly the data-loss scenario the
                // paper's safety comparison quantifies. A provably safe
                // collector reaching this fallback is a bug, not a model
                // property — keep the old invariant check for those.
                debug_assert!(
                    mw.gc_kind().needs_time_assumptions(),
                    "recovery line exhausted {i}'s stored checkpoints under \
                     safe collector {:?}: Lemma 1 must be total",
                    mw.gc_kind()
                );
                mw.store()
                    .indices()
                    .next()
                    .expect("stable storage retains at least one checkpoint")
            })
            .collect()
    }

    /// Runs a full recovery session: computes the line, rolls back every
    /// process whose component is below its volatile state, and (in
    /// coordinated mode) distributes `LI` to the others.
    ///
    /// # Panics
    ///
    /// As for [`recovery_line`](Self::recovery_line).
    pub fn recover(
        &self,
        processes: &mut [Middleware],
        faulty: &FaultySet,
    ) -> RecoverySessionReport {
        let line = self.recovery_line(processes, faulty);

        // LI over the post-recovery CCP: a rolling process's last stable
        // becomes its component; a non-rolling process keeps its own.
        let li = LastIntervals::from_last_stable(
            &processes
                .iter()
                .zip(&line)
                .map(|(mw, &component)| component.min(mw.last_stable()))
                .collect::<Vec<_>>(),
        );
        let li_opt = match self.mode {
            RecoveryMode::Coordinated => Some(&li),
            RecoveryMode::Uncoordinated => None,
        };

        let mut rolled_back = Vec::new();
        let mut eliminated = Vec::new();
        for (mw, &component) in processes.iter_mut().zip(&line) {
            let p = mw.owner();
            let volatile = mw.last_stable().next();
            if component < volatile {
                let report = mw
                    .rollback(component, li_opt)
                    .expect("recovery-line component is stored (Theorem 4 safety)");
                rolled_back.push((p, component));
                eliminated.extend(
                    report
                        .eliminated
                        .into_iter()
                        .map(|idx| CheckpointId::new(p, idx)),
                );
            } else if self.mode == RecoveryMode::Coordinated {
                eliminated.extend(
                    mw.recovery_info(&li)
                        .into_iter()
                        .map(|idx| CheckpointId::new(p, idx)),
                );
            }
        }

        RecoverySessionReport {
            faulty: faulty.iter().copied().collect(),
            line,
            rolled_back,
            eliminated,
            li: match self.mode {
                RecoveryMode::Coordinated => Some(li),
                RecoveryMode::Uncoordinated => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::Payload;
    use rdt_core::GcKind;
    use rdt_protocols::ProtocolKind;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    fn system(n: usize) -> Vec<Middleware> {
        (0..n)
            .map(|i| Middleware::new(p(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
            .collect()
    }

    /// p0 checkpoints and informs p1; p1 checkpoints and informs p2.
    fn chain() -> Vec<Middleware> {
        let mut mws = system(3);
        mws[0].basic_checkpoint().unwrap();
        let m = mws[0].send(p(1), Payload::empty());
        mws[1].receive(&m).unwrap();
        mws[1].basic_checkpoint().unwrap();
        let m = mws[1].send(p(2), Payload::empty());
        mws[2].receive(&m).unwrap();
        mws
    }

    #[test]
    fn empty_faulty_set_keeps_all_volatile() {
        let mws = chain();
        let line = RecoveryManager::new().recovery_line(&mws, &FaultySet::new());
        let volatile: Vec<_> = mws.iter().map(|m| m.last_stable().next()).collect();
        assert_eq!(line, volatile);
    }

    #[test]
    fn chain_head_failure_rolls_back_dependents() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty);
        // p0 restarts from s^1 (its last stable), p1 and p2 roll to s^0.
        assert_eq!(report.line, vec![idx(1), idx(0), idx(0)]);
        assert_eq!(report.rolled_back.len(), 3);
        assert!(!mws[0].is_crashed());
        // Post-recovery vectors: restored checkpoint's DV, bumped.
        assert_eq!(mws[1].dv().entry(p(1)).value(), 1);
    }

    #[test]
    fn tail_failure_touches_only_the_tail() {
        let mut mws = chain();
        mws[2].crash();
        let faulty: FaultySet = [p(2)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty);
        assert_eq!(
            report.rolled_back,
            vec![(p(2), idx(0))],
            "only the crashed tail rolls back"
        );
    }

    #[test]
    fn line_matches_offline_oracle() {
        // Mirror the chain into the offline CCP and compare Lemma-1 results.
        use rdt_ccp::CcpBuilder;
        let mws = chain();
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        let ccp = b.build();

        let mgr = RecoveryManager::new();
        for mask in 0u8..8 {
            let faulty: FaultySet = (0..3).filter(|i| mask & (1 << i) != 0).map(p).collect();
            let online = mgr.recovery_line(&mws, &faulty);
            let offline = ccp.recovery_line(&faulty.iter().copied().collect());
            assert_eq!(
                online.iter().map(|c| c.value()).collect::<Vec<_>>(),
                offline.to_raw(),
                "faulty {faulty:?}"
            );
        }
    }

    #[test]
    fn uncoordinated_mode_passes_no_li() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report =
            RecoveryManager::with_mode(RecoveryMode::Uncoordinated).recover(&mut mws, &faulty);
        assert!(report.li.is_none());
        assert!(!mws[0].is_crashed());
    }

    #[test]
    fn recovery_line_components_are_restorable() {
        // Safety end-to-end: the line only names stored checkpoints.
        let mut mws = chain();
        for mw in &mut mws {
            mw.basic_checkpoint().unwrap();
        }
        mws[1].crash();
        let faulty: FaultySet = [p(1)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty);
        for (proc_, to) in &report.rolled_back {
            assert!(mws[proc_.index()].store().contains(*to));
        }
    }

    #[test]
    fn report_counts_rollback_depth() {
        let mut mws = chain();
        mws[0].crash();
        let faulty: FaultySet = [p(0)].into_iter().collect();
        let report = RecoveryManager::new().recover(&mut mws, &faulty);
        assert_eq!(report.rollback_depth(), report.rolled_back.len());
    }
}
