//! Rollback-recovery orchestration for RDT checkpointing systems.
//!
//! Provides the centralized [`RecoveryManager`] the paper assumes
//! (Section 2.4): it stops the world, determines the recovery line by
//! Lemma 1 from the dependency vectors stored with the checkpoints,
//! distributes the last-interval vector `LI`, and drives each process's
//! Algorithm-3 rollback through the `rdt-protocols` middleware.
//!
//! Two modes mirror Section 4.3:
//!
//! * [`RecoveryMode::Coordinated`] — global information available, garbage
//!   collection during rollback uses Theorem 1 via `LI`;
//! * [`RecoveryMode::Uncoordinated`] — no global information, Algorithm 3
//!   substitutes the process's own `DV` (Theorem 2).
//!
//! The decentralized minimum/maximum consistent-global-checkpoint
//! calculations the RDT property enables (Wang, reference \[20\]) are
//! provided both offline (`rdt-ccp`'s `max_consistent_containing` /
//! `min_consistent_containing` oracles) and **online** over live
//! middleware state in [`wang`], with property tests pinning the two
//! against each other.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
pub mod wang;

pub use manager::{FaultySet, RecoveryManager, RecoveryMode, RecoverySessionReport};
