//! Rollback-recovery orchestration for RDT checkpointing systems.
//!
//! Provides the centralized [`RecoveryManager`] the paper assumes
//! (Section 2.4): it stops the world, determines the recovery line by
//! Lemma 1 from the dependency vectors stored with the checkpoints,
//! distributes the last-interval vector `LI`, and drives each process's
//! Algorithm-3 rollback through the `rdt-protocols` middleware.
//!
//! Two modes mirror Section 4.3:
//!
//! * [`RecoveryMode::Coordinated`] — global information available, garbage
//!   collection during rollback uses Theorem 1 via `LI`;
//! * [`RecoveryMode::Uncoordinated`] — no global information, Algorithm 3
//!   substitutes the process's own `DV` (Theorem 2).
//!
//! # Incarnations and Lemma-1 totality
//!
//! The paper's model describes one execution epoch; under *repeated*
//! crash/rollback sessions, re-executed intervals reuse their indices and
//! raw dependency-vector comparisons alias knowledge of abandoned
//! executions with knowledge of live ones. The manager therefore works
//! with **incarnation-numbered intervals** (à la Strom/Yemini's optimistic
//! recovery, see `rdt_base::ids`): every rollback opens a fresh
//! incarnation, each vector entry carries the incarnation it refers to,
//! and blocking in Lemma 1 only counts dependencies on the faulty
//! process's *live* incarnation. The surviving prefix of every dead
//! incarnation lies at or below the live execution's restore points, so
//! dead-incarnation knowledge can never refer to states above the current
//! last stable checkpoint — which makes the recovery line **total**: some
//! stored checkpoint of every process is always unblocked.
//!
//! Totality is enforced, not assumed: exhausting a process's stored
//! checkpoints under a safe collector surfaces as
//! [`RecoveryError::LineExhausted`] (a garbage-collection safety bug),
//! while the time-based baseline — unsafe by design when its delay
//! assumptions break — degrades to the oldest survivor and is reported in
//! [`RecoverySessionReport::degraded`].
//!
//! The decentralized minimum/maximum consistent-global-checkpoint
//! calculations the RDT property enables (Wang, reference \[20\]) are
//! provided both offline (`rdt-ccp`'s `max_consistent_containing` /
//! `min_consistent_containing` oracles) and **online** over live
//! middleware state in [`wang`], with property tests pinning the two
//! against each other.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
pub mod wang;

pub use manager::{
    AppliedRecovery, FaultySet, LineSource, ProcessView, RecoveryError, RecoveryManager,
    RecoveryMode, RecoveryPlan, RecoverySessionReport,
};
