//! Wang's decentralized minimum / maximum consistent global checkpoints
//! (reference \[20\] of the paper), computed **online**.
//!
//! Under RDT every checkpoint dependency is causal and captured by the
//! dependency vectors stored alongside the checkpoints (Section 4.2), so
//! each process can compute its own component of the extreme consistent
//! global checkpoints containing a target set `S` from purely local state
//! plus the targets' vectors — no coordinator, no extra rounds. This module
//! is the online counterpart of the offline
//! [`Ccp::max_consistent_containing`] / [`Ccp::min_consistent_containing`]
//! oracles, and is cross-checked against them by the crate's property
//! tests.
//!
//! [`Ccp::max_consistent_containing`]: https://docs.rs/rdt-ccp
//! [`Ccp::min_consistent_containing`]: https://docs.rs/rdt-ccp

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};
use rdt_protocols::Middleware;

/// A target local checkpoint that must be contained in the computed global
/// checkpoint: `(process, checkpoint index)`. The volatile state is
/// addressed as `last_stable + 1`.
pub type Target = (ProcessId, CheckpointIndex);

/// The **maximum** consistent global checkpoint containing `targets`:
/// componentwise, the latest general checkpoint of each non-target process
/// that does not causally follow any target.
///
/// Returns one component per process (`last_stable + 1` denotes a volatile
/// state), or `None` when:
///
/// * a target is not resolvable (not in stable storage and not volatile —
///   e.g. already garbage collected);
/// * two targets name different checkpoints of the same process;
/// * the targets are mutually inconsistent; or
/// * some process has no stored checkpoint old enough (collected by GC),
///   so its component cannot be *restored* — the calculation is for
///   recovery, and an unrestorable component is useless.
///
/// Requires RD-trackable executions (all RDT protocols of this workspace).
pub fn max_consistent_containing(
    processes: &[Middleware],
    targets: &[Target],
) -> Option<Vec<CheckpointIndex>> {
    let resolved = resolve_targets(processes, targets)?;
    processes
        .iter()
        .map(|mw| {
            let i = mw.owner();
            if let Some(&(_, index, _)) = resolved.iter().find(|&&(q, _, _)| q == i) {
                return Some(index);
            }
            // Candidates newest-first: the volatile state, then the stored
            // checkpoints.
            let volatile = (mw.last_stable().next(), mw.dv().clone());
            let follows_a_target = |dv: &DependencyVector| {
                resolved
                    .iter()
                    .any(|&(q, gamma, _)| dv.dominates_checkpoint(q, gamma))
            };
            if !follows_a_target(&volatile.1) {
                return Some(volatile.0);
            }
            mw.store()
                .iter()
                .rev()
                .find(|(_, dv)| !follows_a_target(dv))
                .map(|(index, _)| index)
        })
        .collect()
}

/// The **minimum** consistent global checkpoint containing `targets`:
/// componentwise, the earliest general checkpoint of each non-target
/// process that no target causally depends on past — i.e.
/// `max_t DV(t)[i]`, directly from the targets' stored vectors (this is
/// where RDT's on-the-fly trackability shines: one vector read per target).
///
/// Same return conventions and failure conditions as
/// [`max_consistent_containing`], except no store scan is needed, so GC
/// never makes a component unrestorable here — the minimum's components are
/// exactly the knowledge horizons the targets pin, which Theorem 2 keeps
/// stored.
pub fn min_consistent_containing(
    processes: &[Middleware],
    targets: &[Target],
) -> Option<Vec<CheckpointIndex>> {
    let resolved = resolve_targets(processes, targets)?;
    Some(
        processes
            .iter()
            .map(|mw| {
                let i = mw.owner();
                if let Some(&(_, index, _)) = resolved.iter().find(|&&(q, _, _)| q == i) {
                    return index;
                }
                let k = resolved
                    .iter()
                    .map(|(_, _, dv)| dv.entry(i).value())
                    .max()
                    .unwrap_or(0);
                CheckpointIndex::new(k)
            })
            .collect(),
    )
}

/// Resolves each target's dependency vector and validates the set:
/// one checkpoint per process, pairwise consistent.
fn resolve_targets(
    processes: &[Middleware],
    targets: &[Target],
) -> Option<Vec<(ProcessId, CheckpointIndex, DependencyVector)>> {
    let mut resolved: Vec<(ProcessId, CheckpointIndex, DependencyVector)> = Vec::new();
    for &(q, gamma) in targets {
        if q.index() >= processes.len() {
            return None;
        }
        if let Some(&(_, prev, _)) = resolved.iter().find(|&&(r, _, _)| r == q) {
            if prev != gamma {
                return None; // conflicting targets on one process
            }
            continue; // duplicate
        }
        let mw = &processes[q.index()];
        let dv = if gamma == mw.last_stable().next() {
            mw.dv().clone()
        } else {
            mw.store().dv(gamma).ok()?.clone()
        };
        resolved.push((q, gamma, dv));
    }
    // Pairwise consistency: t → t' iff DV(t')[t.process] > t.index.
    for (k, (q1, g1, _)) in resolved.iter().enumerate() {
        for (q2, g2, dv2) in &resolved[k + 1..] {
            let dv1 = &resolved[k].2;
            if dv2.dominates_checkpoint(*q1, *g1) || dv1.dominates_checkpoint(*q2, *g2) {
                return None;
            }
        }
    }
    Some(resolved)
}

#[cfg(test)]
mod tests {
    use rdt_base::Payload;
    use rdt_core::GcKind;
    use rdt_protocols::ProtocolKind;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    /// p0 ckpt s^1 → m → p1 ckpt s^1 → m → p2, retaining everything.
    fn chain() -> Vec<Middleware> {
        let mut mws: Vec<Middleware> = (0..3)
            .map(|i| Middleware::new(p(i), 3, ProtocolKind::Fdas, GcKind::None))
            .collect();
        mws[0].basic_checkpoint().unwrap();
        let m = mws[0].send(p(1), Payload::empty());
        mws[1].receive(&m).unwrap();
        mws[1].basic_checkpoint().unwrap();
        let m = mws[1].send(p(2), Payload::empty());
        mws[2].receive(&m).unwrap();
        mws
    }

    #[test]
    fn empty_targets_give_the_extremes() {
        let mws = chain();
        let max = max_consistent_containing(&mws, &[]).unwrap();
        // Everyone's volatile state.
        assert_eq!(max, vec![idx(2), idx(2), idx(1)]);
        let min = min_consistent_containing(&mws, &[]).unwrap();
        assert_eq!(min, vec![idx(0), idx(0), idx(0)]);
    }

    #[test]
    fn max_avoids_checkpoints_following_the_target() {
        let mws = chain();
        // Target s_0^0: any knowledge of p0 at all (interval ≥ 1 > 0)
        // causally follows it, and p0's news reached p1 directly and p2
        // transitively, so every later checkpoint drops out.
        let max = max_consistent_containing(&mws, &[(p(0), idx(0))]).unwrap();
        assert_eq!(max[0], idx(0));
        assert_eq!(max[1], idx(0));
        assert_eq!(max[2], idx(0), "p2 heard of p0 through p1's message");
    }

    #[test]
    fn min_reads_target_vectors() {
        let mws = chain();
        // Target p2's volatile state: it depends on p0 interval 2 and p1
        // interval 2 (transitively), so the minimum is (1, 1, volatile)...
        // DV(v_2) = [2, 2, 1] → components max(DV)[i] = 2, 2.
        let min = min_consistent_containing(&mws, &[(p(2), idx(1))]).unwrap();
        assert_eq!(min, vec![idx(2), idx(2), idx(1)]);
    }

    #[test]
    fn conflicting_targets_yield_none() {
        let mws = chain();
        assert!(max_consistent_containing(&mws, &[(p(0), idx(0)), (p(0), idx(1))]).is_none());
        assert!(min_consistent_containing(&mws, &[(p(0), idx(0)), (p(0), idx(1))]).is_none());
    }

    #[test]
    fn duplicate_targets_are_tolerated() {
        let mws = chain();
        let a = max_consistent_containing(&mws, &[(p(0), idx(1))]).unwrap();
        let b = max_consistent_containing(&mws, &[(p(0), idx(1)), (p(0), idx(1))]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn inconsistent_targets_yield_none() {
        let mws = chain();
        // s_0^1 → s_1^1 through the message: inconsistent pair.
        assert!(max_consistent_containing(&mws, &[(p(0), idx(1)), (p(1), idx(1))]).is_none());
    }

    #[test]
    fn unresolvable_target_yields_none() {
        let mws = chain();
        assert!(max_consistent_containing(&mws, &[(p(0), idx(9))]).is_none());
        assert!(max_consistent_containing(&mws, &[(p(9), idx(0))]).is_none());
    }

    #[test]
    fn volatile_targets_are_addressable() {
        let mws = chain();
        // p0's volatile state is index 2 (last stable 1 + 1).
        let max = max_consistent_containing(&mws, &[(p(0), idx(2))]).unwrap();
        assert_eq!(max[0], idx(2));
    }
}
