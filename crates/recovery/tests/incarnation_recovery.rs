//! Regression tests for Lemma-1 totality under repeated crash/rollback
//! sessions — the incarnation-numbered-interval model.
//!
//! Before incarnation numbers, interval indices reused by a re-execution
//! aliased the indices of the abandoned attempt, and stale ("orphaned")
//! causal knowledge could block every stored checkpoint of a live process
//! in a later session. These tests pin the fixed behaviour:
//!
//! * knowledge of a dead incarnation never blocks a live checkpoint;
//! * the self-precedence guard holds across incarnations;
//! * exhausting a process's store is a hard [`RecoveryError`] for safe
//!   collectors and a reported degradation for the time-based baseline.

use rdt_base::{CheckpointIndex, DependencyVector, Incarnation, Payload, ProcessId};
use rdt_core::{CheckpointStore, GcKind};
use rdt_protocols::{Middleware, ProtocolKind};
use rdt_recovery::{FaultySet, RecoveryError, RecoveryManager};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn idx(i: usize) -> CheckpointIndex {
    CheckpointIndex::new(i)
}

fn faulty(ids: &[usize]) -> FaultySet {
    ids.iter().map(|&i| p(i)).collect()
}

/// The orphaned-knowledge scenario that motivated the incarnation model.
///
/// `f` rolls back *below its last stable checkpoint* in a correlated
/// session (its recent checkpoint is blocked by the co-faulty `q`), so `r`'s
/// surviving knowledge of `f`'s interval 2 refers to a dead execution. In a
/// later session where `f` fails alone, that stale entry must not block
/// `r` — the raw interval aliases `f`'s re-executed live interval 2.
#[test]
fn dead_incarnation_knowledge_never_blocks_later_sessions() {
    let n = 3;
    let (q, f, r) = (p(0), p(1), p(2));
    // NoForced keeps the protocol out of the way: the point is the GC /
    // recovery interplay, and a forced checkpoint would split f's interval
    // before the q-dependency lands.
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(p(i), n, ProtocolKind::NoForced, GcKind::RdtLgc))
        .collect();

    // q checkpoints s_q^1 and sends from its volatile interval 2.
    mws[0].basic_checkpoint().unwrap();
    let mq = mws[0].send(f, Payload::empty());

    // f checkpoints s_f^1, informs r from interval 2, then learns q's
    // volatile interval and checkpoints s_f^2 (now blocked by q's failure).
    mws[1].basic_checkpoint().unwrap();
    let mf = mws[1].send(r, Payload::empty());
    mws[1].receive(&mq).unwrap();
    mws[1].basic_checkpoint().unwrap();

    // r's volatile state knows f's interval 2 — and nothing of q.
    mws[2].receive(&mf).unwrap();
    assert_eq!(mws[2].dv().entry(f).value(), 2);
    assert_eq!(mws[2].dv().entry(q).value(), 0);

    // Correlated session: q and f fail together. s_f^2 depends on q's lost
    // volatile interval, so f rolls to s_f^1 — abandoning its interval 2,
    // which r's knowledge refers to. r itself is untouched.
    mws[0].crash();
    mws[1].crash();
    let report = RecoveryManager::new()
        .recover(&mut mws, &faulty(&[0, 1]))
        .expect("Lemma 1 total");
    assert_eq!(report.line, vec![idx(1), idx(1), idx(1)]);
    assert_eq!(mws[1].incarnation(), Incarnation::new(1));
    assert!(report.degraded.is_empty());
    // r survived with its stale (incarnation-0) knowledge of f intact.
    assert_eq!(mws[2].dv().lineage(f).interval().value(), 2);
    assert_eq!(mws[2].dv().lineage(f).incarnation(), Incarnation::ZERO);

    // Later session: f fails alone, with last stable s_f^1 in incarnation 1.
    // r's stale raw entry 2 > 1 would have blocked its volatile state (and
    // its stored s_r^0... every checkpoint recording f) under raw interval
    // comparison; the incarnation component marks it dead.
    mws[1].crash();
    let line = RecoveryManager::new()
        .recovery_line(&mws, &faulty(&[1]))
        .expect("Lemma 1 total");
    assert_eq!(
        line,
        vec![
            mws[0].last_stable().next(), // q keeps its volatile state
            idx(1),                      // f restores its last stable
            mws[2].last_stable().next(), // r keeps its volatile state
        ],
        "dead-incarnation knowledge must not block live states"
    );
    let report = RecoveryManager::new()
        .recover(&mut mws, &faulty(&[1]))
        .expect("Lemma 1 total");
    assert_eq!(report.rolled_back, vec![(f, idx(1))]);
    assert_eq!(mws[1].incarnation(), Incarnation::new(2));
}

/// Satellite regression: the `s_f^last` self-precedence guard across
/// incarnations. After two rollbacks onto the same checkpoint, the stored
/// copy of `f`'s last stable checkpoint was written in an incarnation two
/// generations older than the live one — it still must not read as its own
/// blocker, and the line component must be exactly the last stable.
#[test]
fn self_precedence_guard_holds_across_incarnations() {
    let n = 2;
    let f = p(0);
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(p(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
        .collect();
    mws[0].basic_checkpoint().unwrap(); // s_f^1, stored in incarnation 0

    for round in 1..=3u32 {
        mws[0].crash();
        let line = RecoveryManager::new()
            .recovery_line(&mws, &faulty(&[0]))
            .expect("a process is never its own blocker");
        assert_eq!(
            line[0],
            mws[0].last_stable(),
            "round {round}: the faulty process restores its last stable"
        );
        let report = RecoveryManager::new()
            .recover(&mut mws, &faulty(&[0]))
            .unwrap();
        assert_eq!(report.rolled_back, vec![(f, idx(1))]);
        assert_eq!(mws[0].incarnation(), Incarnation::new(round));
        // The stored copy keeps its original incarnation; only the live
        // execution advances.
        assert_eq!(
            mws[0].store().dv(idx(1)).unwrap().lineage(f).incarnation(),
            Incarnation::ZERO
        );
    }
}

/// Builds a crashed middleware over a hand-crafted store whose every
/// checkpoint records dependencies on the faulty peer's live volatile
/// execution — the "store exhausted" shape.
fn exhausted_store_middleware(gc: GcKind) -> Middleware {
    let owner = p(1);
    let mut store = CheckpointStore::new(owner);
    // Both surviving checkpoints depend on p0's volatile intervals (> its
    // last stable 0) — earlier, f-ignorant checkpoints were "collected".
    store.insert(idx(1), DependencyVector::from_raw(vec![2, 1]));
    store.insert(idx(2), DependencyVector::from_raw(vec![3, 2]));
    Middleware::from_store(owner, 2, ProtocolKind::Fdas, gc, store)
}

/// Satellite regression: under a *safe* collector the oldest-survivor
/// fallback is gone — exhausting the store is a release-mode error.
#[test]
fn exhaustion_under_safe_collector_is_an_error() {
    let mut mws = vec![
        Middleware::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc),
        exhausted_store_middleware(GcKind::RdtLgc),
    ];
    mws[0].crash();
    let err = RecoveryManager::new()
        .recovery_line(&mws, &faulty(&[0, 1]))
        .unwrap_err();
    assert_eq!(
        err,
        RecoveryError::LineExhausted {
            process: p(1),
            gc: GcKind::RdtLgc,
        }
    );
    // recover() surfaces the same error instead of restoring an
    // inconsistent state...
    let err = RecoveryManager::new()
        .recover(&mut mws, &faulty(&[0, 1]))
        .unwrap_err();
    // ...and converts into the workspace error type for simulator plumbing.
    assert!(matches!(
        rdt_base::Error::from(err),
        rdt_base::Error::RecoveryLineExhausted { process } if process == p(1)
    ));
}

/// The time-based baseline keeps the graceful degradation: its safety rests
/// on real-time assumptions, and breaking them *is* the experiment. The
/// fallback is reported per process, not silent.
#[test]
fn exhaustion_under_time_based_collector_degrades_and_reports() {
    let mut mws = vec![
        Middleware::new(
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::TimeBased { horizon: 10 },
        ),
        exhausted_store_middleware(GcKind::TimeBased { horizon: 10 }),
    ];
    mws[0].crash();
    let report = RecoveryManager::new()
        .recover(&mut mws, &faulty(&[0, 1]))
        .expect("time-based collectors degrade instead of erroring");
    assert_eq!(report.degraded, vec![p(1)]);
    assert_eq!(report.line[1], idx(1), "oldest survivor");
    assert!(!mws[1].is_crashed());
}
