//! Property tests: the online decentralized min/max calculations agree with
//! the offline `rdt-ccp` oracles on protocol-generated executions.

use proptest::prelude::*;
use rdt_base::{CheckpointIndex, Payload, ProcessId};
use rdt_ccp::{Ccp, CcpBuilder, GeneralCheckpoint};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, ProtocolKind};
use rdt_recovery::wang;

#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..5, 0usize..64, 0usize..64).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..max,
    )
}

/// Runs ops through middlewares (retaining everything: `GcKind::None`)
/// while mirroring into an offline CCP.
fn run(n: usize, proto: ProtocolKind, ops: &[Op]) -> (Vec<Middleware>, Ccp) {
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, proto, GcKind::None))
        .collect();
    let mut mirror = CcpBuilder::new(n);
    let mut in_flight = Vec::new();
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => {
                mws[p.index()].basic_checkpoint().expect("alive");
                mirror.checkpoint(p);
            }
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                let pb = mws[p.index()].piggyback();
                let (_, forced) = mws[p.index()].send_reported(q, Payload::empty());
                let id = mirror.send(p, q);
                if forced.is_some() {
                    mirror.checkpoint(p);
                }
                in_flight.push((id, q, pb));
            }
            _ => {
                if !in_flight.is_empty() {
                    let (id, dst, pb) = in_flight.remove(op.b % in_flight.len());
                    let report = mws[dst.index()].receive_piggyback(&pb).expect("alive");
                    if report.forced.is_some() {
                        mirror.checkpoint(dst);
                    }
                    mirror.deliver(id);
                }
            }
        }
    }
    (mws, mirror.build())
}

/// Picks a deterministic target checkpoint per selected process.
fn pick_targets(ccp: &Ccp, selector: usize, count: usize) -> Vec<(ProcessId, CheckpointIndex)> {
    let mut targets = Vec::new();
    for k in 0..count.min(ccp.n()) {
        let p = ProcessId::new((selector + k) % ccp.n());
        if targets.iter().any(|&(q, _)| q == p) {
            continue;
        }
        let max = ccp.volatile(p).index.value();
        let index = CheckpointIndex::new((selector / (k + 1)) % (max + 1));
        targets.push((p, index));
    }
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Online max/min equal the offline oracle whenever the oracle accepts
    /// the target set, and both reject it otherwise.
    #[test]
    fn online_extremes_match_the_offline_oracle(
        n in 2usize..4,
        ops in ops(40),
        proto in prop::sample::select(vec![ProtocolKind::Fdas, ProtocolKind::Cbr, ProtocolKind::Mrs]),
        selector in 0usize..1000,
        count in 1usize..3,
    ) {
        let (mws, ccp) = run(n, proto, &ops);
        prop_assert!(ccp.is_rdt());
        let targets = pick_targets(&ccp, selector, count);
        let as_general: Vec<GeneralCheckpoint> = targets
            .iter()
            .map(|&(p, i)| GeneralCheckpoint::new(p, i))
            .collect();

        let oracle_max = ccp.max_consistent_containing(&as_general);
        let oracle_min = ccp.min_consistent_containing(&as_general);
        let online_max = wang::max_consistent_containing(&mws, &targets);
        let online_min = wang::min_consistent_containing(&mws, &targets);

        prop_assert_eq!(
            online_max.clone().map(|v| v.iter().map(|c| c.value()).collect::<Vec<_>>()),
            oracle_max.map(|g| g.to_raw()),
            "max for targets {:?}", targets
        );
        prop_assert_eq!(
            online_min.clone().map(|v| v.iter().map(|c| c.value()).collect::<Vec<_>>()),
            oracle_min.map(|g| g.to_raw()),
            "min for targets {:?}", targets
        );

        // Sanity: when defined, min ≤ max componentwise and both are
        // consistent global checkpoints of the CCP.
        if let (Some(lo), Some(hi)) = (online_min, online_max) {
            for (l, h) in lo.iter().zip(&hi) {
                prop_assert!(l <= h);
            }
            let lo_gc = rdt_ccp::GlobalCheckpoint::new(lo);
            let hi_gc = rdt_ccp::GlobalCheckpoint::new(hi);
            prop_assert!(ccp.is_consistent_global(&lo_gc));
            prop_assert!(ccp.is_consistent_global(&hi_gc));
        }
    }

    /// The recovery line for faulty set F equals the maximum consistent
    /// global checkpoint containing the faulty processes' last stable
    /// checkpoints — Wang's characterization of the line.
    #[test]
    fn recovery_line_is_a_max_containing_query(
        n in 2usize..4,
        ops in ops(40),
        faulty_bits in 1usize..8,
    ) {
        let (mws, ccp) = run(n, ProtocolKind::Fdas, &ops);
        let faulty: Vec<ProcessId> = (0..n)
            .filter(|i| faulty_bits & (1 << i) != 0)
            .map(ProcessId::new)
            .collect();
        prop_assume!(!faulty.is_empty());

        // Targets: each faulty process's last stable checkpoint. These can
        // be mutually inconsistent (one faulty process's last checkpoint
        // can precede another's) — then the query fails while the line
        // still exists, so only compare when the query succeeds.
        let targets: Vec<(ProcessId, CheckpointIndex)> = faulty
            .iter()
            .map(|&f| (f, mws[f.index()].last_stable()))
            .collect();
        if let Some(max) = wang::max_consistent_containing(&mws, &targets) {
            let line = ccp.recovery_line(&faulty.iter().copied().collect());
            prop_assert_eq!(
                max.iter().map(|c| c.value()).collect::<Vec<_>>(),
                line.to_raw(),
                "faulty {:?}", faulty
            );
        }
    }
}
